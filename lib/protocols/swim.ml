type bug = No_bug | No_suspicion | Ack_race

module type CONFIG = sig
  val num_servers : int
  val bug : bug
end

(* Tunables shared by live runs and checkers.  A direct probe times
   out after [ping_timeout_rounds] of the origin's own probe rounds
   (ticks); a relay is asked after [relay_after_rounds]; a suspected
   peer is declared dead after [suspicion_rounds] further rounds. *)
let ping_timeout_rounds = 3

let relay_after_rounds = 1

let suspicion_rounds = 2

type peer_status =
  | Alive of int  (* last known incarnation *)
  | Suspect of int * int  (* incarnation suspected at, rounds suspected *)
  | Dead of int * int
      (* incarnation, rounds the peer spent suspected before the
         verdict — the audit trail [no_unsuspected_death] checks *)

type probe = {
  p_target : int;
  p_seq : int;
  p_rounds : int;  (* probe rounds since the ping went out *)
  p_relayed : bool;  (* ping-req already sent for this probe *)
}

type relay_duty = { r_origin : int; r_seq : int }

type swim_state = {
  incarnation : int;
  counter : int;  (* local probe counter; seqs encode it with the id *)
  peers : (int * peer_status) list;  (* sorted, every peer, no self *)
  probe : probe option;  (* at most one outstanding probe *)
  relay : relay_duty option;  (* forwarded-ack debt from a ping-req *)
  stale_seq : int option;
      (* [Ack_race] only: the durable remnant of a relay duty whose
         origin was lost in a crash; never set on the correct path *)
  phantom : bool;  (* received a forwarded ack we never asked for *)
}

type swim_message =
  | Ping of { seq : int }
  | Ack of { seq : int }
  | Ping_req of { target : int; seq : int }
  | Relay_ping of { seq : int }
  | Relay_ack of { seq : int }
  | Fwd_ack of { seq : int }
  | Suspect_notice of { inc : int }
  | Refute of { inc : int }

type swim_action = Probe_round

module Make (C : CONFIG) = struct
  let name = "swim"

  let num_nodes = C.num_servers

  type state = swim_state

  type message = swim_message

  type action = swim_action

  let initial self =
    {
      incarnation = 0;
      counter = 0;
      peers =
        (* [Alive (opaque 0)] rather than the literal [Alive 0]: the
           literal is a static constant, so every peer would alias one
           physical block and Marshal would emit back-references —
           states rebuilt to incarnation 0 through [set_peer] allocate
           fresh blocks and would digest differently despite being
           structurally equal. *)
        List.filter_map
          (fun n ->
            if n = self then None else Some (n, Alive (Sys.opaque_identity 0)))
          (List.init num_nodes (fun i -> i));
      probe = None;
      relay = None;
      stale_seq = None;
      phantom = false;
    }

  let env ~src ~dst m = Dsm.Envelope.make ~src ~dst m

  (* Sequence numbers carry their issuer: [seq mod num_nodes] is the
     origin's id.  A forwarded ack whose embedded issuer is not the
     receiver is a phantom — in the correct protocol every ack echoes
     the origin's own seq verbatim, so no schedule (reordering,
     duplication, loss) can fabricate one; only the [Ack_race] relay
     stitching a stale durable seq onto a new origin can. *)
  let make_seq ~self counter = (counter * num_nodes) + self

  let seq_issuer seq = ((seq mod num_nodes) + num_nodes) mod num_nodes

  let set_peer peers n status =
    List.map (fun (p, st) -> if p = n then (p, status) else (p, st)) peers

  let peer_status peers n = List.assoc_opt n peers

  (* Deterministic relay choice: the first node that is neither the
     origin nor the target, in id order.  Determinism keeps replays
     bit-identical; whether the relay happens to be crashed is the
     fault plan's business. *)
  let pick_relay ~self ~target =
    let rec go n =
      if n >= num_nodes then None
      else if n <> self && n <> target then Some n
      else go (n + 1)
    in
    go 0

  (* Round-robin probe target over the peers not yet declared dead. *)
  let pick_target ~counter peers =
    let eligible =
      List.filter_map
        (fun (p, st) -> match st with Dead _ -> None | _ -> Some p)
        peers
    in
    match eligible with
    | [] -> None
    | ps -> Some (List.nth ps (counter mod List.length ps))

  (* One probe round: age suspicions, then advance (or start) the
     outstanding probe. *)
  let age_suspicions s =
    let peers =
      List.map
        (fun (p, st) ->
          match st with
          | Suspect (inc, rounds) when rounds + 1 >= suspicion_rounds ->
              (p, Dead (inc, rounds + 1))
          | Suspect (inc, rounds) -> (p, Suspect (inc, rounds + 1))
          | st -> (p, st))
        s.peers
    in
    { s with peers }

  let peer_inc s n =
    match peer_status s.peers n with
    | Some (Alive i) | Some (Suspect (i, _)) | Some (Dead (i, _)) -> i
    | None -> 0

  let start_probe ~self s =
    match pick_target ~counter:s.counter s.peers with
    | None -> (s, [])
    | Some target ->
        let seq = make_seq ~self s.counter in
        ( {
            s with
            counter = s.counter + 1;
            probe =
              Some
                { p_target = target; p_seq = seq; p_rounds = 0;
                  p_relayed = false };
          },
          [ env ~src:self ~dst:target (Ping { seq }) ] )

  let probe_timeout ~self s p =
    let inc = peer_inc s p.p_target in
    match C.bug with
    | No_suspicion ->
        (* the planted bug: a missing ack is treated as proof of
           death — no suspicion period, no chance to refute *)
        ( { s with probe = None; peers = set_peer s.peers p.p_target
                                           (Dead (inc, 0)) },
          [] )
    | No_bug | Ack_race ->
        ( { s with probe = None;
            peers = set_peer s.peers p.p_target (Suspect (inc, 0)) },
          [ env ~src:self ~dst:p.p_target (Suspect_notice { inc }) ] )

  let advance_probe ~self s =
    match s.probe with
    | None -> start_probe ~self s
    | Some p ->
        let rounds = p.p_rounds + 1 in
        if rounds >= ping_timeout_rounds then probe_timeout ~self s p
        else if rounds >= relay_after_rounds && not p.p_relayed then
          let s =
            { s with probe = Some { p with p_rounds = rounds;
                                    p_relayed = true } }
          in
          match pick_relay ~self ~target:p.p_target with
          | None -> (s, [])
          | Some relay ->
              ( s,
                [ env ~src:self ~dst:relay
                    (Ping_req { target = p.p_target; seq = p.p_seq }) ] )
        else ({ s with probe = Some { p with p_rounds = rounds } }, [])

  let handle_action ~self s Probe_round =
    let s = age_suspicions s in
    advance_probe ~self s

  let enabled_actions ~self:_ _ = [ Probe_round ]

  (* An ack (direct or forwarded) that matches the outstanding probe
     clears it and marks the target alive again. *)
  let accept_ack s seq =
    match s.probe with
    | Some p when p.p_seq = seq ->
        let inc = peer_inc s p.p_target in
        { s with probe = None;
          peers = set_peer s.peers p.p_target (Alive inc) }
    | _ -> s (* stale or duplicated ack: ignore *)

  let handle_message ~self s e =
    let src = e.Dsm.Envelope.src in
    match e.Dsm.Envelope.payload with
    | Ping { seq } -> (s, [ env ~src:self ~dst:src (Ack { seq }) ])
    | Ack { seq } -> (accept_ack s seq, [])
    | Ping_req { target; seq } ->
        (* take on the relay duty; under [Ack_race] a stale durable
           seq left by a crash is stitched onto the new origin *)
        let seq', stale_seq =
          match (C.bug, s.stale_seq) with
          | Ack_race, Some s0 -> (s0, None)
          | _ -> (seq, s.stale_seq)
        in
        ( { s with relay = Some { r_origin = src; r_seq = seq' };
            stale_seq },
          [ env ~src:self ~dst:target (Relay_ping { seq = seq' }) ] )
    | Relay_ping { seq } -> (s, [ env ~src:self ~dst:src (Relay_ack { seq }) ])
    | Relay_ack { seq } -> (
        match s.relay with
        | Some r when r.r_seq = seq ->
            ( { s with relay = None },
              [ env ~src:self ~dst:r.r_origin (Fwd_ack { seq }) ] )
        | _ -> (s, []) (* no matching duty: a duplicate or stale ack *))
    | Fwd_ack { seq } ->
        if seq_issuer seq <> self then ({ s with phantom = true }, [])
        else (accept_ack s seq, [])
    | Suspect_notice { inc } ->
        if inc >= s.incarnation then
          let inc' = inc + 1 in
          ( { s with incarnation = inc' },
            [ env ~src:self ~dst:src (Refute { inc = inc' }) ] )
        else (s, [])
    | Refute { inc } -> (
        match peer_status s.peers src with
        | Some (Suspect (i, _)) when inc > i ->
            ({ s with peers = set_peer s.peers src (Alive inc) }, [])
        | Some (Alive i) when inc > i ->
            ({ s with peers = set_peer s.peers src (Alive inc) }, [])
        | _ -> (s, []))

  (* Probes and relay duties are volatile; the membership view,
     incarnation, and probe counter are durable.  The [Ack_race] bug
     is precisely a recovery leak: the relay duty's seq field survives
     the crash while its origin does not. *)
  let on_recover ~self:_ s =
    let stale_seq =
      match (C.bug, s.relay) with
      | Ack_race, Some r -> Some r.r_seq
      | _ -> None
    in
    { s with probe = None; relay = None; stale_seq }

  let pp_status ppf = function
    | Alive i -> Format.fprintf ppf "alive@%d" i
    | Suspect (i, r) -> Format.fprintf ppf "suspect@%d+%d" i r
    | Dead (i, r) -> Format.fprintf ppf "dead@%d/%d" i r

  let pp_state ppf s =
    Format.fprintf ppf "Swim{inc=%d c=%d probe=%s relay=%s%s%s [%s]}"
      s.incarnation s.counter
      (match s.probe with
      | None -> "-"
      | Some p ->
          Printf.sprintf "%d#%d+%d%s" p.p_target p.p_seq p.p_rounds
            (if p.p_relayed then "r" else ""))
      (match s.relay with
      | None -> "-"
      | Some r -> Printf.sprintf "%d#%d" r.r_origin r.r_seq)
      (match s.stale_seq with
      | None -> ""
      | Some q -> Printf.sprintf " stale=%d" q)
      (if s.phantom then " PHANTOM" else "")
      (String.concat ","
         (List.map
            (fun (p, st) -> Format.asprintf "%d:%a" p pp_status st)
            s.peers))

  let pp_message ppf = function
    | Ping { seq } -> Format.fprintf ppf "Ping(#%d)" seq
    | Ack { seq } -> Format.fprintf ppf "Ack(#%d)" seq
    | Ping_req { target; seq } ->
        Format.fprintf ppf "PingReq(%d,#%d)" target seq
    | Relay_ping { seq } -> Format.fprintf ppf "RelayPing(#%d)" seq
    | Relay_ack { seq } -> Format.fprintf ppf "RelayAck(#%d)" seq
    | Fwd_ack { seq } -> Format.fprintf ppf "FwdAck(#%d)" seq
    | Suspect_notice { inc } -> Format.fprintf ppf "Suspect(@%d)" inc
    | Refute { inc } -> Format.fprintf ppf "Refute(@%d)" inc

  let pp_action ppf Probe_round = Format.pp_print_string ppf "probe-round"

  let no_unsuspected_death =
    Dsm.Invariant.for_all_nodes ~name:"no-unsuspected-death" (fun _ s ->
        List.fold_left
          (fun acc (p, st) ->
            match (acc, st) with
            | Some _, _ -> acc
            | None, Dead (_, rounds) when rounds < suspicion_rounds ->
                Some
                  (Printf.sprintf
                     "peer %d declared dead after %d suspicion rounds (< %d)"
                     p rounds suspicion_rounds)
            | None, _ -> None)
          None s.peers)

  let no_phantom_ack =
    Dsm.Invariant.for_all_nodes ~name:"no-phantom-ack" (fun _ s ->
        if s.phantom then
          Some "received a forwarded ack for a probe this node never issued"
        else None)

  let membership_safety =
    Dsm.Invariant.conj [ no_unsuspected_death; no_phantom_ack ]
end
