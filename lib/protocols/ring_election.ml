type bug = No_bug | Forward_smaller

module type CONFIG = sig
  val num_nodes : int
  val starters : int list
  val bug : bug
end

type re_state = {
  participating : bool;
  leader : int option;
  woke : bool;
}

type re_message = Token of int | Elected of int

module Make (C : CONFIG) = struct
  let name = "ring-election"
  let num_nodes = C.num_nodes

  let () =
    if C.num_nodes < 2 then invalid_arg "Ring_election: need at least 2 nodes";
    if List.exists (fun s -> s < 0 || s >= C.num_nodes) C.starters then
      invalid_arg "Ring_election: starter out of range"

  type state = re_state
  type message = re_message
  type action = unit

  let initial _ = { participating = false; leader = None; woke = false }

  let succ self = (self + 1) mod C.num_nodes

  let send self msg = [ Dsm.Envelope.make ~src:self ~dst:(succ self) msg ]

  let handle_token ~self state id =
    if id = self then
      (* the own token survived a full round: this node wins *)
      ({ state with leader = Some self }, send self (Elected self))
    else if id > self then
      ({ state with participating = true }, send self (Token id))
    else if not state.participating then
      (* join the election with the own, larger identifier *)
      ({ state with participating = true }, send self (Token self))
    else
      match C.bug with
      | No_bug -> (state, []) (* swallow the losing token *)
      | Forward_smaller ->
          (* the bug: the losing token survives and can come home *)
          (state, send self (Token id))

  let handle_elected ~self state l =
    let state = { state with leader = Some l; participating = false } in
    if l = self then (state, []) else (state, send self (Elected l))

  let handle_message ~self state env =
    match env.Dsm.Envelope.payload with
    | Token id -> handle_token ~self state id
    | Elected l -> handle_elected ~self state l

  let enabled_actions ~self state =
    if
      List.mem self C.starters
      && (not state.woke)
      && (not state.participating)
      && state.leader = None
    then [ () ]
    else []

  let handle_action ~self state () =
    ( { state with participating = true; woke = true },
      send self (Token self) )

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s =
    Format.fprintf ppf "{part=%b leader=%s}" s.participating
      (match s.leader with None -> "-" | Some l -> string_of_int l)

  let pp_message ppf = function
    | Token id -> Format.fprintf ppf "Token(%d)" id
    | Elected l -> Format.fprintf ppf "Elected(%d)" l

  let pp_action ppf () = Format.pp_print_string ppf "wake"

  let agreement =
    Dsm.Invariant.for_all_pairs ~name:"election-agreement" (fun _ a _ b ->
        match (a.leader, b.leader) with
        | Some la, Some lb when la <> lb ->
            Some
              (Printf.sprintf "one node follows N%d, another follows N%d" la
                 lb)
        | _ -> None)

  let abstraction s = s.leader

  let conflicts a b = a <> b
end
