type bug = No_bug | Commit_on_majority

module type CONFIG = sig
  val num_nodes : int
  val no_voters : int list
  val bug : bug
end

type coordinator_phase = C_init | C_preparing | C_committed | C_aborted

type participant_phase = P_idle | P_prepared | P_committed | P_aborted

type tpc_state = {
  coord : coordinator_phase;
  part : participant_phase;
  votes : (int * bool) list;
}

type tpc_message = Prepare | Vote of bool | Commit | Abort

module Make (C : CONFIG) = struct
  let name = "two-phase-commit"
  let num_nodes = C.num_nodes

  let () =
    if C.num_nodes < 2 then invalid_arg "Twophase: need a participant";
    if List.mem 0 C.no_voters then
      invalid_arg "Twophase: the coordinator does not vote"

  type state = tpc_state
  type message = tpc_message
  type action = unit

  let coordinator = 0

  let initial _ = { coord = C_init; part = P_idle; votes = [] }

  let participants = List.filter (fun n -> n <> coordinator) (Dsm.Node_id.all C.num_nodes)

  let to_participants self msg =
    List.map (fun dst -> Dsm.Envelope.make ~src:self ~dst msg) participants

  let rec record_vote node v = function
    | [] -> [ (node, v) ]
    | (n, _) :: rest when n = node -> (n, v) :: rest  (* duplicate vote *)
    | (n, x) :: rest when n > node -> (node, v) :: (n, x) :: rest
    | nv :: rest -> nv :: record_vote node v rest

  (* "All voted yes" under the correct rule; a majority of participants
     under the buggy one. *)
  let decides_commit votes =
    let yes = List.length (List.filter snd votes) in
    match C.bug with
    | No_bug ->
        List.length votes = List.length participants
        && yes = List.length participants
    | Commit_on_majority -> yes > List.length participants / 2

  let decides_abort votes = List.exists (fun (_, v) -> not v) votes

  let handle_coordinator self state = function
    | Vote v, src ->
        if state.coord <> C_preparing then (state, [])
        else begin
          let votes = record_vote src v state.votes in
          if decides_commit votes then
            ({ state with coord = C_committed; votes },
             to_participants self Commit)
          else if decides_abort votes && not (decides_commit votes) then
            ({ state with coord = C_aborted; votes },
             to_participants self Abort)
          else ({ state with votes }, [])
        end
    | (Prepare | Commit | Abort), _ ->
        raise (Dsm.Protocol.Local_assert "decision message at coordinator")

  let handle_participant self state = function
    | Prepare ->
        (match state.part with
        | P_idle ->
            if List.mem self C.no_voters then
              ( { state with part = P_aborted },
                [ Dsm.Envelope.make ~src:self ~dst:coordinator (Vote false) ] )
            else
              ( { state with part = P_prepared },
                [ Dsm.Envelope.make ~src:self ~dst:coordinator (Vote true) ] )
        | P_prepared | P_committed | P_aborted -> (state, []))
    | Commit -> (
        match state.part with
        | P_prepared -> ({ state with part = P_committed }, [])
        | P_committed -> (state, [])
        | P_aborted ->
            (* With the majority bug a no-voter can receive Commit after
               aborting; it stays aborted — which is exactly what breaks
               atomicity across nodes. *)
            (state, [])
        | P_idle ->
            raise (Dsm.Protocol.Local_assert "commit before prepare"))
    | Abort -> (
        match state.part with
        | P_committed ->
            raise (Dsm.Protocol.Local_assert "abort after commit")
        | _ -> ({ state with part = P_aborted }, []))
    | Vote _ -> raise (Dsm.Protocol.Local_assert "vote at participant")

  let handle_message ~self state env =
    let msg = env.Dsm.Envelope.payload in
    if self = coordinator then
      handle_coordinator self state (msg, env.Dsm.Envelope.src)
    else handle_participant self state msg

  let enabled_actions ~self state =
    if self = coordinator && state.coord = C_init then [ () ] else []

  let handle_action ~self state () =
    ({ state with coord = C_preparing }, to_participants self Prepare)

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s =
    let c =
      match s.coord with
      | C_init -> "init"
      | C_preparing -> "preparing"
      | C_committed -> "committed"
      | C_aborted -> "aborted"
    in
    let p =
      match s.part with
      | P_idle -> "idle"
      | P_prepared -> "prepared"
      | P_committed -> "committed"
      | P_aborted -> "aborted"
    in
    Format.fprintf ppf "{coord=%s part=%s votes=%d}" c p (List.length s.votes)

  let pp_message ppf = function
    | Prepare -> Format.pp_print_string ppf "Prepare"
    | Vote v -> Format.fprintf ppf "Vote(%b)" v
    | Commit -> Format.pp_print_string ppf "Commit"
    | Abort -> Format.pp_print_string ppf "Abort"

  let pp_action ppf () = Format.pp_print_string ppf "begin"

  let decision n s =
    if n = coordinator then
      match s.coord with
      | C_committed -> Some `Committed
      | C_aborted -> Some `Aborted
      | C_init | C_preparing -> None
    else
      match s.part with
      | P_committed -> Some `Committed
      | P_aborted -> Some `Aborted
      | P_idle | P_prepared -> None

  let atomicity =
    Dsm.Invariant.for_all_pairs ~name:"2pc-atomicity" (fun i a j b ->
        match (decision i a, decision j b) with
        | Some `Committed, Some `Aborted | Some `Aborted, Some `Committed ->
            Some "one node committed while another aborted"
        | _ -> None)

  (* The abstraction cannot distinguish the coordinator from the
     participants, so it reads whichever role is live; both roles never
     decide in one node except at the coordinator, whose participant
     phase stays idle. *)
  let abstraction s =
    match (s.coord, s.part) with
    | C_committed, _ | _, P_committed -> Some `Committed
    | C_aborted, _ | _, P_aborted -> Some `Aborted
    | _ -> None

  let conflicts a b =
    match (a, b) with
    | `Committed, `Aborted | `Aborted, `Committed -> true
    | _ -> false
end
