type 'm seq_message = { seq : int; payload : 'm }

type 's seq_state = {
  inner : 's;
  next_out : (int * int) list;
  next_in : (int * int) list;
}

module Make (P : Dsm.Protocol.S) = struct
  let name = P.name ^ "+fifo"
  let num_nodes = P.num_nodes

  type state = P.state seq_state
  type message = P.message seq_message
  type action = P.action

  let initial n = { inner = P.initial n; next_out = []; next_in = [] }

  let get key l = match List.assoc_opt key l with Some v -> v | None -> 0

  let rec bump key = function
    | [] -> [ (key, 1) ]
    | (k, v) :: rest when k = key -> (k, v + 1) :: rest
    | (k, v) :: rest when k > key -> (key, 1) :: (k, v) :: rest
    | kv :: rest -> kv :: bump key rest

  (* Stamp the inner protocol's sends with per-channel sequence
     numbers. *)
  let stamp state outs =
    List.fold_left
      (fun (state, acc) (env : P.message Dsm.Envelope.t) ->
        let dst = env.Dsm.Envelope.dst in
        let seq = get dst state.next_out in
        let stamped =
          Dsm.Envelope.map (fun payload -> { seq; payload }) env
        in
        ({ state with next_out = bump dst state.next_out }, stamped :: acc))
      (state, []) outs
    |> fun (state, acc) -> (state, List.rev acc)

  let handle_message ~self state env =
    let src = env.Dsm.Envelope.src in
    let { seq; payload } = env.Dsm.Envelope.payload in
    if seq <> get src state.next_in then
      (* TCP would reject this segment; ignore the interleaving. *)
      raise (Dsm.Protocol.Local_assert "out-of-order delivery on a FIFO channel");
    let inner', outs =
      P.handle_message ~self state.inner (Dsm.Envelope.map (fun _ -> payload) env)
    in
    let state = { state with inner = inner'; next_in = bump src state.next_in } in
    stamp state outs

  let enabled_actions ~self state = P.enabled_actions ~self state.inner

  let handle_action ~self state a =
    let inner', outs = P.handle_action ~self state.inner a in
    stamp { state with inner = inner' } outs

  (* The sequence counters model the transport's connection state,
     which survives checking-time crash-recovery: only the inner
     protocol's recovery hook decides what a restarted node keeps. *)
  let on_recover ~self state = { state with inner = P.on_recover ~self state.inner }

  let pp_state ppf s = P.pp_state ppf s.inner

  let pp_message ppf m =
    Format.fprintf ppf "#%d:%a" m.seq P.pp_message m.payload

  let pp_action = P.pp_action

  let lift_invariant inv =
    Dsm.Invariant.make ~name:(Dsm.Invariant.name inv ^ "+fifo") (fun system ->
        match Dsm.Invariant.check inv (Array.map (fun s -> s.inner) system) with
        | Some v -> Some v.Dsm.Invariant.detail
        | None -> None)
end
