(** Online model checking (§3.3, the CrystalBall execution mode).

    "An online model checker is restarted periodically from the live
    state of a running system.  As a consequence, the model checker has
    a chance to explore more relevant states at deeper levels, instead
    of getting stuck in the exponential explosion problem at some very
    shallow depths."

    This driver interleaves a {!Sim.Live_sim} deployment with periodic
    LMC runs seeded from snapshots.  Each LMC run gets a bounded budget
    (the paper restarts every minute with runs of a few seconds); the
    first soundness-verified violation stops the hunt and is reported
    with its witness schedule.

    The functor takes two protocol modules over the same state type:
    [Live] drives the deployment (it wants background traffic), and
    [Check] is the state machine the checker explores — typically the
    same protocol with a more focused test driver, which §4.2 singles
    out as decisive for model-checking efficiency. *)

module Make
    (Live : Dsm.Protocol.S)
    (Check : Dsm.Protocol.S
               with type state = Live.state
                and type message = Live.message
                and type action = Live.action) : sig
  module Checker : module type of Lmc.Checker.Make (Check)

  type config = {
    sim : Sim.Live_sim.Make(Live).config;
    check_interval : float;
        (** simulated seconds of live execution between snapshots *)
    max_live_time : float;  (** give up after this much simulated time *)
    checker : Checker.config;
        (** per-run budget; set [time_limit]/[max_transitions] so one
            run stays within the restart period *)
    action_bounds : int list;
        (** iterative widening (§4.2 "Local events"): each snapshot is
            checked once per bound, restarting from scratch with more
            allowed local events per node.  [[]] means a single
            unbounded run. *)
    steer : bool;
        (** execution steering (the CrystalBall idea this checker was
            built to serve): instead of stopping at the first confirmed
            violation, veto the witness's first internal action at its
            node in the live deployment — the predicted run loses its
            trigger — and keep hunting until [max_live_time].  The
            first prediction is still returned as the report. *)
    steer_scope : [ `Exact_action | `Node ];
        (** veto width: [`Exact_action] denies only the predicted
            action value — precise, but a stale node can often reach
            the same violation through a sibling action before the next
            restart; [`Node] quarantines the offending node's driver
            entirely. *)
  }

  type report = {
    live_time : float;  (** simulated time of the revealing snapshot *)
    checks_run : int;  (** LMC runs performed, including the hit *)
    snapshot : Live.state array;  (** the live state the run started from *)
    violation : Checker.violation;
    result : Checker.result;  (** statistics of the revealing run *)
  }

  type outcome = {
    report : report option;  (** [None]: no bug within [max_live_time] *)
    total_checks : int;
    total_check_time : float;  (** wall-clock spent inside LMC runs *)
    vetoed : (Dsm.Node_id.t * Live.action) list;
        (** steering mode: the (node, action) pairs denied to the live
            system, in installation order *)
    live_violation_time : float option;
        (** first simulated time at which the {e live} system state
            itself violated the invariant — [None] is the steering
            success criterion *)
  }

  (** [run ?obs config ~strategy ~invariant] drives the hunt.  When
      [obs] is given it reaches every layer: the simulation and each
      LMC restart record into it (overriding [config.checker.obs]),
      the driver itself counts [online.checks] / [online.vetoes] and
      emits one [online.check] event per restart (live time, widening
      bound, run statistics, verdict) plus an [online.veto] event per
      steering intervention. *)
  val run :
    ?obs:Obs.scope ->
    config ->
    strategy:'k Checker.strategy ->
    invariant:Live.state Dsm.Invariant.t ->
    outcome

  val pp_report : Format.formatter -> report -> unit
end
