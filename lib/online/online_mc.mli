(** Online model checking (§3.3, the CrystalBall execution mode).

    "An online model checker is restarted periodically from the live
    state of a running system.  As a consequence, the model checker has
    a chance to explore more relevant states at deeper levels, instead
    of getting stuck in the exponential explosion problem at some very
    shallow depths."

    This driver interleaves a {!Sim.Live_sim} deployment with periodic
    LMC runs seeded from snapshots.  Each LMC run gets a bounded budget
    (the paper restarts every minute with runs of a few seconds); the
    first soundness-verified violation stops the hunt and is reported
    with its witness schedule.

    The functor takes two protocol modules over the same state type:
    [Live] drives the deployment (it wants background traffic), and
    [Check] is the state machine the checker explores — typically the
    same protocol with a more focused test driver, which §4.2 singles
    out as decisive for model-checking efficiency. *)

module Make
    (Live : Dsm.Protocol.S)
    (Check : Dsm.Protocol.S
               with type state = Live.state
                and type message = Live.message
                and type action = Live.action) : sig
  module Checker : module type of Lmc.Checker.Make (Check)

  (** Hardening knobs for the supervised loop.  The live loop must
      outlive its checker: every pathology — a checker exception, a
      restart that blows its budget, a corrupt snapshot — is recorded
      as an [online.degraded] event and the hunt continues, possibly
      with a narrower checker. *)
  type supervisor = {
    restart_budget_ms : int option;
        (** wall-clock budget per checker restart.  Caps each restart's
            [time_limit]; a restart that consumes it escalates the
            degradation tier: tier 1 halves [max_depth], tier 2 drops a
            [General] strategy to [Automatic], tier 3 sets
            [defer_soundness].  [None] (default): no budget, no
            tiers. *)
    memory_budget_bytes : int option;
        (** retained-bytes budget per restart, audited after each run
            from the checker's analytic footprint; exceeding it
            escalates the tier like a wall-clock trip *)
    max_retries : int;
        (** retries per restart when [Checker.run] raises; after the
            last one the restart is abandoned (degradation event
            ["checker_failed_permanently"]) and the loop moves on *)
    backoff_base_ms : int;
        (** base of the exponential retry backoff; attempt [k] sleeps
            [base * 2^k] ms, jittered uniformly in [0.5, 1.5) of that
            from a deterministic stream split off the simulation seed *)
    backoff_cap_ms : int;  (** upper bound on the nominal backoff *)
    checksum_snapshots : bool;
        (** round-trip every snapshot through the checksummed wire
            encoding ({!Sim.Snapshot.to_string} / [of_string]); a
            capture failing its digest is skipped with a typed
            ["corrupt_snapshot"] degradation event instead of being
            handed to [Marshal] *)
    snapshot_tamper : (string -> string) option;
        (** test hook: rewrite the wire bytes between encode and
            decode (fault injection for the checksum path) *)
  }

  (** No budgets, 2 retries, 10 ms base / 1 s cap backoff, no
      checksumming. *)
  val default_supervisor : supervisor

  (** Disk-backed persistence for the hunt ({!Store.Checkpoint}): the
      per-node stores, [I+] and the set of invariant-clean combinations
      live in mmap'd files under [dir], checkpointed after every
      snapshot check, so a killed hunt resumes instead of restarting. *)
  type store_config = {
    dir : string;  (** checkpoint directory, created if missing *)
    resume : bool;
        (** warm-start: load the checkpoint, fast-forward the
            deterministic simulation to the saved live time and skip
            every combination an earlier phase already proved clean —
            a resumed phase creates strictly fewer system states than
            a cold rerun.  A missing or corrupt checkpoint (truncated
            file, digest mismatch, different seed or protocol) emits a
            ["corrupt_checkpoint"] degradation and falls back to a
            cold start; it never crashes the hunt. *)
  }

  type config = {
    sim : Sim.Live_sim.Make(Live).config;
    check_interval : float;
        (** simulated seconds of live execution between snapshots *)
    max_live_time : float;  (** give up after this much simulated time *)
    checker : Checker.config;
        (** per-run budget; set [time_limit]/[max_transitions] so one
            run stays within the restart period *)
    action_bounds : int list;
        (** iterative widening (§4.2 "Local events"): each snapshot is
            checked once per bound, restarting from scratch with more
            allowed local events per node.  [[]] means a single
            unbounded run. *)
    steer : bool;
        (** execution steering (the CrystalBall idea this checker was
            built to serve): instead of stopping at the first confirmed
            violation, veto the witness's first internal action at its
            node in the live deployment — the predicted run loses its
            trigger — and keep hunting until [max_live_time].  The
            first prediction is still returned as the report. *)
    steer_scope : [ `Exact_action | `Node ];
        (** veto width: [`Exact_action] denies only the predicted
            action value — precise, but a stale node can often reach
            the same violation through a sibling action before the next
            restart; [`Node] quarantines the offending node's driver
            entirely. *)
    supervisor : supervisor;
        (** hardened-loop knobs; {!default_supervisor} preserves the
            unsupervised behaviour except that checker exceptions are
            retried instead of propagated *)
    store : store_config option;
        (** persistent, resumable checking; [None] keeps everything in
            memory.  When the flight recorder streams to a file, the
            checkpoint emits its own [store.v1] records
            (open/flush/compact/resume) into the same JSONL sink. *)
  }

  type report = {
    live_time : float;  (** simulated time of the revealing snapshot *)
    checks_run : int;  (** LMC runs performed, including the hit *)
    snapshot : Live.state array;  (** the live state the run started from *)
    violation : Checker.violation;
    result : Checker.result;  (** statistics of the revealing run *)
  }

  type outcome = {
    report : report option;  (** [None]: no bug within [max_live_time] *)
    total_checks : int;
    total_check_time : float;  (** wall-clock spent inside LMC runs *)
    vetoed : (Dsm.Node_id.t * Live.action) list;
        (** steering mode: the (node, action) pairs denied to the live
            system, in installation order *)
    live_violation_time : float option;
        (** first simulated time at which the {e live} system state
            itself violated the invariant — [None] is the steering
            success criterion *)
    degradations : string list;
        (** reasons of every [online.degraded] event, in order
            (["checker_failure"], ["checker_failed_permanently"],
            ["restart_budget_exceeded"], ["memory_budget_exceeded"],
            ["corrupt_snapshot"]) *)
    final_tier : int;
        (** degradation tier at the end of the hunt, 0 (never
            degraded) to 3 *)
    resumed_at : float option;
        (** simulated time the hunt fast-forwarded to after loading a
            checkpoint; [None] for a cold start *)
    states_explored : int;
        (** system states created, {e cumulative across resumed
            phases} (a warm phase inherits the checkpoint's count) *)
    store_hits : int;
        (** combinations skipped because the persistent store already
            proved them clean, cumulative across phases *)
    membership : bool array;
        (** the live fleet's membership map at the end of the hunt —
            all-present unless the plan has join/leave clauses.  A
            resumed hunt restores this from the deterministic
            fast-forward; the checkpoint's saved map is audited
            against the plan at load time (mismatch degrades with
            ["membership_mismatch"] and cold-starts). *)
  }

  (** [run ?obs config ~strategy ~invariant] drives the hunt.  When
      [obs] is given it reaches every layer: the simulation and each
      LMC restart record into it (overriding [config.checker.obs]),
      the driver itself counts [online.checks] / [online.vetoes] and
      emits one [online.check] event per restart (live time, widening
      bound, run statistics, verdict) plus an [online.veto] event per
      steering intervention. *)
  val run :
    ?obs:Obs.scope ->
    config ->
    strategy:'k Checker.strategy ->
    invariant:Live.state Dsm.Invariant.t ->
    outcome

  val pp_report : Format.formatter -> report -> unit
end
