module Make
    (Live : Dsm.Protocol.S)
    (Check : Dsm.Protocol.S
               with type state = Live.state
                and type message = Live.message
                and type action = Live.action) =
struct
  module Checker = Lmc.Checker.Make (Check)
  module Sim_p = Sim.Live_sim.Make (Live)

  type supervisor = {
    restart_budget_ms : int option;
    memory_budget_bytes : int option;
    max_retries : int;
    backoff_base_ms : int;
    backoff_cap_ms : int;
    checksum_snapshots : bool;
    snapshot_tamper : (string -> string) option;
  }

  let default_supervisor =
    {
      restart_budget_ms = None;
      memory_budget_bytes = None;
      max_retries = 2;
      backoff_base_ms = 10;
      backoff_cap_ms = 1_000;
      checksum_snapshots = false;
      snapshot_tamper = None;
    }

  type store_config = {
    dir : string;  (* checkpoint directory (created if missing) *)
    resume : bool;
        (* warm-start from an existing checkpoint: fast-forward the
           deterministic simulation to the saved live time and skip
           every combination an earlier phase proved clean.  A missing
           or corrupt checkpoint degrades to a cold start. *)
  }

  type config = {
    sim : Sim_p.config;
    check_interval : float;
    max_live_time : float;
    checker : Checker.config;
    action_bounds : int list;
    steer : bool;
    steer_scope : [ `Exact_action | `Node ];
    supervisor : supervisor;
    store : store_config option;
  }

  type report = {
    live_time : float;
    checks_run : int;
    snapshot : Live.state array;
    violation : Checker.violation;
    result : Checker.result;
  }

  type outcome = {
    report : report option;
    total_checks : int;
    total_check_time : float;
    vetoed : (Dsm.Node_id.t * Live.action) list;
    live_violation_time : float option;
    degradations : string list;
    final_tier : int;
    resumed_at : float option;
        (* simulated time the hunt fast-forwarded to, [None] cold *)
    states_explored : int;
        (* system states created, cumulative across resumed phases *)
    store_hits : int;  (* combination-store hits, cumulative *)
    membership : bool array;
        (* the fleet at the end of the hunt (all-present without
           churn clauses) *)
  }

  (* The first live-controllable step of a witness: the earliest
     internal action.  Vetoing it at its node denies the predicted run
     its trigger (execution steering, CrystalBall-style). *)
  let first_action (violation : Checker.violation) =
    List.find_map
      (function
        | Dsm.Trace.Execute (n, a) -> Some (n, a)
        | Dsm.Trace.Deliver _ | Dsm.Trace.Crash _ -> None)
      violation.Checker.schedule

  let run ?(obs = Obs.null) config ~strategy ~invariant =
    if config.check_interval <= 0. then
      invalid_arg "Online_mc.run: check_interval must be positive";
    let c_checks = Obs.counter obs "online.checks" in
    let c_vetoes = Obs.counter obs "online.vetoes" in
    (* A scope given here reaches everything below the driver; when the
       caller passes none, the checker keeps whatever its own config
       carries. *)
    let checker_obs =
      if Obs.is_null obs then config.checker.Checker.obs else obs
    in
    let vetoes : (Dsm.Node_id.t * Live.action, unit) Hashtbl.t =
      Hashtbl.create 8
    in
    let quarantined : (Dsm.Node_id.t, unit) Hashtbl.t = Hashtbl.create 8 in
    let install_veto ~live_time n a =
      if not (Hashtbl.mem vetoes (n, a)) then begin
        Hashtbl.replace vetoes (n, a) ();
        (match config.steer_scope with
        | `Node -> Hashtbl.replace quarantined n ()
        | `Exact_action -> ());
        Obs.Metrics.incr c_vetoes;
        Obs.event obs "online.veto"
          ~fields:
            [
              ("live_time", Dsm.Json.Float live_time);
              ("node", Dsm.Json.Int n);
              ( "scope",
                Dsm.Json.String
                  (match config.steer_scope with
                  | `Exact_action -> "exact_action"
                  | `Node -> "node") );
            ];
        true
      end
      else false
    in
    let sim_config =
      if not config.steer then config.sim
      else begin
        let base = config.sim.Sim_p.action_prob in
        let action_prob n a =
          if Hashtbl.mem vetoes (n, a) || Hashtbl.mem quarantined n then 0.0
          else match base with Some f -> f n a | None -> 1.0
        in
        { config.sim with Sim_p.action_prob = Some action_prob }
      end
    in
    let sim =
      Sim_p.create ~obs ~trace:config.checker.Checker.trace sim_config
    in
    let checks = ref 0 in
    let check_time = ref 0. in
    let vetoed = ref [] in
    let live_violation_time = ref None in
    let bounds =
      match config.action_bounds with
      | [] -> [ None ]
      | bs -> List.map (fun b -> Some b) bs
    in
    (* Budgeted restarts share one exploration pool: spawning domains
       per checker run would pay the fork/join setup at every check
       interval, so when the checker config asks for parallelism and
       brings no pool of its own, one is created here and threaded
       through every restart (and every widening bound below). *)
    let owned_pool =
      if
        config.checker.Checker.pool = None
        && config.checker.Checker.domains > 1
      then Some (Par.Pool.create ~obs:checker_obs config.checker.Checker.domains)
      else None
    in
    let pool =
      match config.checker.Checker.pool with
      | Some _ as p -> p
      | None -> owned_pool
    in
    (* ---- Supervision ----------------------------------------------
       The live loop must outlive its checker.  Every pathology below
       — a checker exception, a restart that blows its wall-clock or
       memory budget, a snapshot that arrives torn — is recorded as an
       [online.degraded] event and the loop continues, possibly with a
       narrower checker. *)
    let sup = config.supervisor in
    let c_degraded = Obs.counter obs "online.degraded" in
    (* Health gauges: /healthz reads these by name, so they are kept
       current here — tier on every escalation, the restart budget
       headroom after each audited run, and the wall-clock time of the
       last checked-and-checkpointed snapshot. *)
    let g_tier = Obs.gauge obs "online.tier" in
    let g_budget = Obs.gauge obs "online.restart_budget_ms" in
    let g_snap_ts = Obs.gauge obs "online.last_snapshot_ts" in
    Obs.Metrics.set g_tier 0.;
    (match sup.restart_budget_ms with
    | Some ms -> Obs.Metrics.set g_budget (float_of_int ms)
    | None -> ());
    let degradations = ref [] in
    (* Backoff jitter must not perturb the simulation's replayable
       streams, so it draws from its own stream off a derived seed. *)
    let jitter_rng =
      Sim.Rng.create ~seed:(config.sim.Sim_p.seed lxor 0x5eed)
    in
    let tier = ref 0 in
    let degraded ~reason ~detail =
      Obs.Metrics.incr c_degraded;
      degradations := reason :: !degradations;
      Obs.event obs "online.degraded"
        ~fields:
          [
            ("live_time", Dsm.Json.Float (Sim_p.now sim));
            ("reason", Dsm.Json.String reason);
            ("tier", Dsm.Json.Int !tier);
            ("detail", Dsm.Json.String detail);
          ]
    in
    let escalate ~reason ~detail =
      if !tier < 3 then incr tier;
      Obs.Metrics.set g_tier (float_of_int !tier);
      degraded ~reason ~detail
    in
    (* ---- Persistence (lib/store) ----------------------------------
       A checkpoint directory makes the restart loop *incremental*:
       per-node stores, I+ and the clean-combination set survive the
       process, and a resumed hunt fast-forwards the deterministic
       simulation to the saved live time instead of re-living it.
       Anything wrong with an existing checkpoint (truncated file, bad
       digest, seed/protocol mismatch) is a ["corrupt_checkpoint"]
       degradation followed by a cold start — never a crash. *)
    let states_total = ref 0 in
    let hits_total = ref 0 in
    let found = ref false in
    let ckpt, resumed_at =
      match config.store with
      | None -> (None, None)
      | Some sc ->
          let events = Store.Events.of_trace config.checker.Checker.trace in
          let open_cold () =
            Store.Checkpoint.create ~events ~dir:sc.dir ~protocol:Check.name
              ~num_nodes:Check.num_nodes ~seed:config.sim.Sim_p.seed ()
          in
          if not sc.resume then (Some (open_cold ()), None)
          else begin
            match
              Store.Checkpoint.load ~events ~dir:sc.dir ~protocol:Check.name
                ~num_nodes:Check.num_nodes ~seed:config.sim.Sim_p.seed ()
            with
            | Error (Store.Checkpoint.Corrupt_checkpoint why) ->
                degraded ~reason:"corrupt_checkpoint" ~detail:why;
                (Some (open_cold ()), None)
            | Ok c ->
                let m = Store.Checkpoint.meta c in
                (* Membership audit: the saved map must equal the one
                   our plan implies at the saved time — a mismatch
                   means the checkpoint was written under a different
                   fault plan (or an incompatible format) and resuming
                   it would silently check the wrong fleet. *)
                let expected =
                  Fault.Plan.membership_at config.sim.Sim_p.faults
                    ~num_nodes:Check.num_nodes
                    ~time:m.Store.Checkpoint.m_live_time
                in
                if m.Store.Checkpoint.m_membership <> expected then begin
                  degraded ~reason:"membership_mismatch"
                    ~detail:
                      (Printf.sprintf
                         "checkpoint fleet %s, plan implies %s at t=%.1f"
                         (String.concat ""
                            (Array.to_list
                               (Array.map
                                  (fun b -> if b then "1" else "0")
                                  m.Store.Checkpoint.m_membership)))
                         (String.concat ""
                            (Array.to_list
                               (Array.map
                                  (fun b -> if b then "1" else "0")
                                  expected)))
                         m.Store.Checkpoint.m_live_time);
                  Store.Checkpoint.close c;
                  (Some (open_cold ()), None)
                end
                else begin
                  checks := m.Store.Checkpoint.m_checks;
                  states_total := m.Store.Checkpoint.m_states;
                  hits_total := m.Store.Checkpoint.m_hits;
                  (* the simulation is deterministic in its seed, so
                     replaying up to the saved time restores the exact
                     live state the previous phase died in *)
                  if m.Store.Checkpoint.m_live_time > 0. then
                    Sim_p.run_until sim m.Store.Checkpoint.m_live_time;
                  Store.Events.emit events ~ev:"resume"
                    [
                      ("dir", Dsm.Json.String sc.dir);
                      ( "live_time",
                        Dsm.Json.Float m.Store.Checkpoint.m_live_time );
                      ("checks", Dsm.Json.Int m.Store.Checkpoint.m_checks);
                      ("states", Dsm.Json.Int m.Store.Checkpoint.m_states);
                      ("hits", Dsm.Json.Int m.Store.Checkpoint.m_hits);
                      ( "fleet",
                        Dsm.Json.Int
                          (Array.fold_left
                             (fun acc b -> if b then acc + 1 else acc)
                             0
                             m.Store.Checkpoint.m_membership) );
                    ];
                  (Some c, Some m.Store.Checkpoint.m_live_time)
                end
          end
    in
    let persist =
      Option.map
        (fun c ->
          {
            Lmc.Checker.p_combos = Store.Checkpoint.combos c;
            p_nodes = Store.Checkpoint.node_states c;
            p_iplus = Store.Checkpoint.iplus c;
          })
        ckpt
    in
    let save_progress () =
      match ckpt with
      | None -> ()
      | Some c ->
          Store.Checkpoint.save c
            ~membership:(Sim_p.membership sim)
            ~live_time:(Sim_p.now sim) ~checks:!checks
            ~states:!states_total ~hits:!hits_total ~found:!found;
          Obs.Metrics.set
            (Obs.gauge obs "online.store_occupancy")
            (Store.Fp_set.occupancy (Store.Checkpoint.combos c));
          let considered = !hits_total + !states_total in
          if considered > 0 then
            Obs.Metrics.set
              (Obs.gauge obs "online.store_hit_rate")
              (float_of_int !hits_total /. float_of_int considered);
          (match Store.Rss.sample_bytes () with
          | Some b ->
              Obs.Metrics.set (Obs.gauge obs "online.rss_bytes")
                (float_of_int b)
          | None -> ())
    in
    (* Graceful degradation tiers: 1 halves the depth bound, 2 drops
       LMC-GEN to the invariant-pruned Automatic strategy, 3 defers
       soundness out of the budgeted window.  Each trip narrows the
       next restart instead of killing the loop. *)
    let tiered_checker base =
      let c =
        if !tier >= 1 then
          {
            base with
            Checker.max_depth =
              Some
                (match base.Checker.max_depth with
                | Some d -> max 4 (d / 2)
                | None -> 16);
          }
        else base
      in
      let c =
        match sup.restart_budget_ms with
        | None -> c
        | Some ms ->
            let budget_s = float_of_int ms /. 1000. in
            let tl =
              match c.Checker.time_limit with
              | Some t -> Float.min t budget_s
              | None -> budget_s
            in
            { c with Checker.time_limit = Some tl }
      in
      if !tier >= 3 then { c with Checker.defer_soundness = true } else c
    in
    let tiered_strategy () =
      if !tier >= 2 then
        match strategy with Checker.General -> Checker.Automatic | s -> s
      else strategy
    in
    let backoff attempt =
      let ms =
        min sup.backoff_cap_ms (sup.backoff_base_ms * (1 lsl min attempt 16))
      in
      (* full jitter in [0.5, 1.5) of the nominal delay *)
      let jitter = 0.5 +. Sim.Rng.float jitter_rng in
      Unix.sleepf (float_of_int ms /. 1000. *. jitter)
    in
    (* An exception out of [Checker.run] (a throwing invariant closure,
       an abstraction function that raises, a dead pool worker) is
       retried with jittered exponential backoff; after [max_retries]
       the restart is abandoned and the loop degrades instead. *)
    let supervised_run cfg snapshot =
      let rec attempt k =
        match
          Checker.run (tiered_checker cfg) ~strategy:(tiered_strategy ())
            ~invariant snapshot
        with
        | result -> Some result
        | exception e when k < sup.max_retries ->
            degraded ~reason:"checker_failure" ~detail:(Printexc.to_string e);
            backoff k;
            attempt (k + 1)
        | exception e ->
            escalate ~reason:"checker_failed_permanently"
              ~detail:(Printexc.to_string e);
            None
      in
      attempt 0
    in
    (* Post-run budget audit: a restart that consumed its wall-clock
       budget (its time limit was capped to it above) or exceeded the
       memory budget escalates the degradation tier for the next one. *)
    let audit_budgets (result : Checker.result) =
      (match sup.restart_budget_ms with
      | Some ms ->
          Obs.Metrics.set g_budget
            (Float.max 0. (float_of_int ms -. (result.Checker.elapsed *. 1000.)))
      | None -> ());
      (match sup.restart_budget_ms with
      | Some ms when result.Checker.elapsed *. 1000. >= float_of_int ms ->
          escalate ~reason:"restart_budget_exceeded"
            ~detail:
              (Printf.sprintf "%.0f ms >= %d ms"
                 (result.Checker.elapsed *. 1000.)
                 ms)
      | _ -> ());
      match sup.memory_budget_bytes with
      | Some b when result.Checker.retained_bytes > b ->
          escalate ~reason:"memory_budget_exceeded"
            ~detail:
              (Printf.sprintf "%d B > %d B" result.Checker.retained_bytes b)
      | _ -> ()
    in
    (* Checksummed snapshot hand-off: round-trip the capture through
       the wire encoding so a torn or tampered snapshot is rejected
       with a typed diagnostic before [Marshal] can lie about it.
       [snapshot_tamper] exists so tests can flip bits in flight. *)
    let validated snapshot =
      if not sup.checksum_snapshots then Some snapshot
      else begin
        let wire =
          Sim.Snapshot.to_string
            (Sim.Snapshot.make
               ~membership:(Sim_p.membership sim)
               ~time:(Sim_p.now sim) snapshot)
        in
        let wire =
          match sup.snapshot_tamper with Some f -> f wire | None -> wire
        in
        match Sim.Snapshot.of_string wire with
        | Ok s -> Some s.Sim.Snapshot.states
        | Error (Sim.Snapshot.Corrupt_snapshot why) ->
            degraded ~reason:"corrupt_snapshot" ~detail:why;
            None
      end
    in
    (* One snapshot, several runs with widening local-event bounds; the
       checker restarts from scratch at each bound, as in §4.2. *)
    let check_snapshot raw_snapshot =
      match validated raw_snapshot with
      | None -> None
      | Some snapshot ->
      let rec widen = function
        | [] -> None
        | bound :: rest -> (
            incr checks;
            Obs.Metrics.incr c_checks;
            (* Frame the restart in the flight recorder before the
               checker emits its own [lmc_run] header, so a hunt trace
               segments into per-snapshot, per-bound episodes. *)
            let trace = config.checker.Checker.trace in
            if Obs.Trace.enabled trace then
              ignore
                (Obs.Trace.emit trace ~ev:"restart"
                   [
                     ("run", Dsm.Json.Int !checks);
                     ( "bound",
                       match bound with
                       | Some b -> Dsm.Json.Int b
                       | None -> Dsm.Json.Null );
                     ("live_time", Dsm.Json.Float (Sim_p.now sim));
                   ]);
            match
              supervised_run
                {
                  config.checker with
                  local_action_bound = bound;
                  obs = checker_obs;
                  pool;
                  persist;
                }
                snapshot
            with
            | None -> widen rest
            | Some result -> (
            audit_budgets result;
            check_time := !check_time +. result.Checker.elapsed;
            states_total :=
              !states_total + result.Checker.system_states_created;
            hits_total := !hits_total + result.Checker.store_hits;
            Obs.event obs "online.check"
              ~fields:
                [
                  ("live_time", Dsm.Json.Float (Sim_p.now sim));
                  ("run", Dsm.Json.Int !checks);
                  ( "bound",
                    match bound with
                    | Some b -> Dsm.Json.Int b
                    | None -> Dsm.Json.Null );
                  ("transitions", Dsm.Json.Int result.Checker.transitions);
                  ( "node_states",
                    Dsm.Json.Int result.Checker.total_node_states );
                  ( "system_states",
                    Dsm.Json.Int result.Checker.system_states_created );
                  ( "preliminary_violations",
                    Dsm.Json.Int result.Checker.preliminary_violations );
                  ( "sound_violation",
                    Dsm.Json.Bool (result.Checker.sound_violation <> None) );
                  ("store_hits", Dsm.Json.Int result.Checker.store_hits);
                  ("elapsed_s", Dsm.Json.Float result.Checker.elapsed);
                ];
            match result.Checker.sound_violation with
            | Some violation -> Some (violation, result)
            | None -> widen rest))
      in
      widen bounds
    in
    (* Checkpoint after every snapshot check, hit or miss: a SIGKILL at
       any point costs at most one check interval of progress. *)
    let check_snapshot snapshot =
      let r = Obs.frame obs "online.check" (fun () -> check_snapshot snapshot) in
      if Option.is_some r then found := true;
      save_progress ();
      Obs.Metrics.set g_snap_ts (Unix.gettimeofday ());
      r
    in
    let rec loop () =
      let deadline = Sim_p.now sim +. config.check_interval in
      Sim_p.run_until sim deadline;
      let snapshot = Sim_p.states sim in
      if !live_violation_time = None && Dsm.Invariant.check invariant snapshot <> None
      then live_violation_time := Some (Sim_p.now sim);
      match check_snapshot snapshot with
      | Some (violation, result) ->
          let report =
            {
              live_time = Sim_p.now sim;
              checks_run = !checks;
              snapshot;
              violation;
              result;
            }
          in
          if config.steer then begin
            (* install the veto and keep the system running *)
            (match first_action violation with
            | Some (n, a) ->
                if install_veto ~live_time:(Sim_p.now sim) n a then vetoed := (n, a) :: !vetoed
            | None -> ());
            if Sim_p.now sim >= config.max_live_time then Some report
            else loop_with_report report
          end
          else Some report
      | None -> if Sim_p.now sim >= config.max_live_time then None else loop ()
    and loop_with_report report =
      (* steering mode: remember the first prediction but keep going *)
      let deadline = Sim_p.now sim +. config.check_interval in
      Sim_p.run_until sim deadline;
      let snapshot = Sim_p.states sim in
      if !live_violation_time = None && Dsm.Invariant.check invariant snapshot <> None
      then live_violation_time := Some (Sim_p.now sim);
      (match check_snapshot snapshot with
      | Some (violation, _) -> (
          match first_action violation with
          | Some (n, a) ->
              if install_veto ~live_time:(Sim_p.now sim) n a then vetoed := (n, a) :: !vetoed
          | None -> ())
      | None -> ());
      if Sim_p.now sim >= config.max_live_time then Some report
      else loop_with_report report
    in
    let report =
      Fun.protect
        ~finally:(fun () ->
          Option.iter Par.Pool.shutdown owned_pool;
          Option.iter Store.Checkpoint.close ckpt)
        loop
    in
    {
      report;
      total_checks = !checks;
      total_check_time = !check_time;
      vetoed = List.rev !vetoed;
      live_violation_time = !live_violation_time;
      degradations = List.rev !degradations;
      final_tier = !tier;
      resumed_at;
      states_explored = !states_total;
      store_hits = !hits_total;
      membership = Sim_p.membership sim;
    }

  let pp_report ppf r =
    Format.fprintf ppf
      "@[<v>bug found after %.1f s of (simulated) live execution, on LMC \
       run #%d@ %a@ witness schedule (%d events):@ %a@]"
      r.live_time r.checks_run Dsm.Invariant.pp_violation
      r.violation.Checker.violation
      (List.length r.violation.Checker.schedule)
      (Dsm.Trace.pp ~pp_message:Check.pp_message ~pp_action:Check.pp_action)
      r.violation.Checker.schedule
end
