module Make
    (Live : Dsm.Protocol.S)
    (Check : Dsm.Protocol.S
               with type state = Live.state
                and type message = Live.message
                and type action = Live.action) =
struct
  module Checker = Lmc.Checker.Make (Check)
  module Sim_p = Sim.Live_sim.Make (Live)

  type config = {
    sim : Sim_p.config;
    check_interval : float;
    max_live_time : float;
    checker : Checker.config;
    action_bounds : int list;
    steer : bool;
    steer_scope : [ `Exact_action | `Node ];
  }

  type report = {
    live_time : float;
    checks_run : int;
    snapshot : Live.state array;
    violation : Checker.violation;
    result : Checker.result;
  }

  type outcome = {
    report : report option;
    total_checks : int;
    total_check_time : float;
    vetoed : (Dsm.Node_id.t * Live.action) list;
    live_violation_time : float option;
  }

  (* The first live-controllable step of a witness: the earliest
     internal action.  Vetoing it at its node denies the predicted run
     its trigger (execution steering, CrystalBall-style). *)
  let first_action (violation : Checker.violation) =
    List.find_map
      (function
        | Dsm.Trace.Execute (n, a) -> Some (n, a)
        | Dsm.Trace.Deliver _ -> None)
      violation.Checker.schedule

  let run ?(obs = Obs.null) config ~strategy ~invariant =
    if config.check_interval <= 0. then
      invalid_arg "Online_mc.run: check_interval must be positive";
    let c_checks = Obs.counter obs "online.checks" in
    let c_vetoes = Obs.counter obs "online.vetoes" in
    (* A scope given here reaches everything below the driver; when the
       caller passes none, the checker keeps whatever its own config
       carries. *)
    let checker_obs =
      if Obs.is_null obs then config.checker.Checker.obs else obs
    in
    let vetoes : (Dsm.Node_id.t * Live.action, unit) Hashtbl.t =
      Hashtbl.create 8
    in
    let quarantined : (Dsm.Node_id.t, unit) Hashtbl.t = Hashtbl.create 8 in
    let install_veto ~live_time n a =
      if not (Hashtbl.mem vetoes (n, a)) then begin
        Hashtbl.replace vetoes (n, a) ();
        (match config.steer_scope with
        | `Node -> Hashtbl.replace quarantined n ()
        | `Exact_action -> ());
        Obs.Metrics.incr c_vetoes;
        Obs.event obs "online.veto"
          ~fields:
            [
              ("live_time", Dsm.Json.Float live_time);
              ("node", Dsm.Json.Int n);
              ( "scope",
                Dsm.Json.String
                  (match config.steer_scope with
                  | `Exact_action -> "exact_action"
                  | `Node -> "node") );
            ];
        true
      end
      else false
    in
    let sim_config =
      if not config.steer then config.sim
      else begin
        let base = config.sim.Sim_p.action_prob in
        let action_prob n a =
          if Hashtbl.mem vetoes (n, a) || Hashtbl.mem quarantined n then 0.0
          else match base with Some f -> f n a | None -> 1.0
        in
        { config.sim with Sim_p.action_prob = Some action_prob }
      end
    in
    let sim =
      Sim_p.create ~obs ~trace:config.checker.Checker.trace sim_config
    in
    let checks = ref 0 in
    let check_time = ref 0. in
    let vetoed = ref [] in
    let live_violation_time = ref None in
    let bounds =
      match config.action_bounds with
      | [] -> [ None ]
      | bs -> List.map (fun b -> Some b) bs
    in
    (* Budgeted restarts share one exploration pool: spawning domains
       per checker run would pay the fork/join setup at every check
       interval, so when the checker config asks for parallelism and
       brings no pool of its own, one is created here and threaded
       through every restart (and every widening bound below). *)
    let owned_pool =
      if
        config.checker.Checker.pool = None
        && config.checker.Checker.domains > 1
      then Some (Par.Pool.create ~obs:checker_obs config.checker.Checker.domains)
      else None
    in
    let pool =
      match config.checker.Checker.pool with
      | Some _ as p -> p
      | None -> owned_pool
    in
    (* One snapshot, several runs with widening local-event bounds; the
       checker restarts from scratch at each bound, as in §4.2. *)
    let check_snapshot snapshot =
      let rec widen = function
        | [] -> None
        | bound :: rest -> (
            incr checks;
            Obs.Metrics.incr c_checks;
            (* Frame the restart in the flight recorder before the
               checker emits its own [lmc_run] header, so a hunt trace
               segments into per-snapshot, per-bound episodes. *)
            let trace = config.checker.Checker.trace in
            if Obs.Trace.enabled trace then
              ignore
                (Obs.Trace.emit trace ~ev:"restart"
                   [
                     ("run", Dsm.Json.Int !checks);
                     ( "bound",
                       match bound with
                       | Some b -> Dsm.Json.Int b
                       | None -> Dsm.Json.Null );
                     ("live_time", Dsm.Json.Float (Sim_p.now sim));
                   ]);
            let result =
              Checker.run
                {
                  config.checker with
                  local_action_bound = bound;
                  obs = checker_obs;
                  pool;
                }
                ~strategy ~invariant snapshot
            in
            check_time := !check_time +. result.Checker.elapsed;
            Obs.event obs "online.check"
              ~fields:
                [
                  ("live_time", Dsm.Json.Float (Sim_p.now sim));
                  ("run", Dsm.Json.Int !checks);
                  ( "bound",
                    match bound with
                    | Some b -> Dsm.Json.Int b
                    | None -> Dsm.Json.Null );
                  ("transitions", Dsm.Json.Int result.Checker.transitions);
                  ( "node_states",
                    Dsm.Json.Int result.Checker.total_node_states );
                  ( "system_states",
                    Dsm.Json.Int result.Checker.system_states_created );
                  ( "preliminary_violations",
                    Dsm.Json.Int result.Checker.preliminary_violations );
                  ( "sound_violation",
                    Dsm.Json.Bool (result.Checker.sound_violation <> None) );
                  ("elapsed_s", Dsm.Json.Float result.Checker.elapsed);
                ];
            match result.Checker.sound_violation with
            | Some violation -> Some (violation, result)
            | None -> widen rest)
      in
      widen bounds
    in
    let rec loop () =
      let deadline = Sim_p.now sim +. config.check_interval in
      Sim_p.run_until sim deadline;
      let snapshot = Sim_p.states sim in
      if !live_violation_time = None && Dsm.Invariant.check invariant snapshot <> None
      then live_violation_time := Some (Sim_p.now sim);
      match check_snapshot snapshot with
      | Some (violation, result) ->
          let report =
            {
              live_time = Sim_p.now sim;
              checks_run = !checks;
              snapshot;
              violation;
              result;
            }
          in
          if config.steer then begin
            (* install the veto and keep the system running *)
            (match first_action violation with
            | Some (n, a) ->
                if install_veto ~live_time:(Sim_p.now sim) n a then vetoed := (n, a) :: !vetoed
            | None -> ());
            if Sim_p.now sim >= config.max_live_time then Some report
            else loop_with_report report
          end
          else Some report
      | None -> if Sim_p.now sim >= config.max_live_time then None else loop ()
    and loop_with_report report =
      (* steering mode: remember the first prediction but keep going *)
      let deadline = Sim_p.now sim +. config.check_interval in
      Sim_p.run_until sim deadline;
      let snapshot = Sim_p.states sim in
      if !live_violation_time = None && Dsm.Invariant.check invariant snapshot <> None
      then live_violation_time := Some (Sim_p.now sim);
      (match check_snapshot snapshot with
      | Some (violation, _) -> (
          match first_action violation with
          | Some (n, a) ->
              if install_veto ~live_time:(Sim_p.now sim) n a then vetoed := (n, a) :: !vetoed
          | None -> ())
      | None -> ());
      if Sim_p.now sim >= config.max_live_time then Some report
      else loop_with_report report
    in
    let report =
      Fun.protect
        ~finally:(fun () -> Option.iter Par.Pool.shutdown owned_pool)
        loop
    in
    {
      report;
      total_checks = !checks;
      total_check_time = !check_time;
      vetoed = List.rev !vetoed;
      live_violation_time = !live_violation_time;
    }

  let pp_report ppf r =
    Format.fprintf ppf
      "@[<v>bug found after %.1f s of (simulated) live execution, on LMC \
       run #%d@ %a@ witness schedule (%d events):@ %a@]"
      r.live_time r.checks_run Dsm.Invariant.pp_violation
      r.violation.Checker.violation
      (List.length r.violation.Checker.schedule)
      (Dsm.Trace.pp ~pp_message:Check.pp_message ~pp_action:Check.pp_action)
      r.violation.Checker.schedule
end
