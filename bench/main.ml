(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5), plus the ablations DESIGN.md calls out and
   a few bechamel micro-benchmarks of the core operations.

   Usage: dune exec bench/main.exe -- [--quick] [--only SECTION]
     --quick  trims time budgets and depth caps (CI-sized run)
     --only   run a single section (see `--help' for the list)

   Besides the printed tables, every run writes BENCH_lmc.json: per-figure
   data series plus per-section wall-clock, for machines to diff.

   Absolute numbers differ from the paper's 2006-era Pentium 4; the
   shapes — who wins, by what factor, where the explosion bites — are
   the reproduction target (see EXPERIMENTS.md). *)

(* Set once by the cmdliner driver at the bottom before any section
   runs; refs rather than parameters so the sections read as straight
   benchmark code. *)
let quick = ref false
let only : string list ref = ref []

let section name = match !only with [] -> true | l -> List.mem name l

let header title = Printf.printf "\n=== %s ===\n%!" title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Machine-readable output: BENCH_lmc.json                             *)
(* ------------------------------------------------------------------ *)

(* Sections [record] JSON data series next to their printed tables;
   the dispatcher adds per-section wall-clock.  The file is written
   atomically (.tmp + rename) so an interrupted run never leaves a
   half-written artifact behind. *)
module Bench_out = struct
  let sections : (string * Dsm.Json.t) list ref = ref []
  let elapsed : (string * float) list ref = ref []

  let record name json = sections := (name, json) :: !sections

  let timed name f =
    let t0 = Unix.gettimeofday () in
    f ();
    elapsed := (name, Unix.gettimeofday () -. t0) :: !elapsed

  let write path =
    let obj =
      Dsm.Json.Obj
        [
          ("schema", Dsm.Json.String "lmc-bench/1");
          ("quick", Dsm.Json.Bool !quick);
          ( "wall_clock_s",
            Dsm.Json.Obj
              (List.rev_map (fun (n, t) -> (n, Dsm.Json.Float t)) !elapsed) );
          ("sections", Dsm.Json.Obj (List.rev !sections));
        ]
    in
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (Dsm.Json.to_string obj);
    output_char oc '\n';
    close_out oc;
    Sys.rename tmp path;
    Printf.printf "\nwrote %s\n%!" path
end

(* ------------------------------------------------------------------ *)
(* Shared modules                                                      *)
(* ------------------------------------------------------------------ *)

module Paxos1 = Protocols.Paxos.Make (Protocols.Paxos.Bench_config)
module G1 = Mc_global.Bdfs.Make (Paxos1)
module L1 = Lmc.Checker.Make (Paxos1)

let paxos1_init () = Dsm.Protocol.initial_system (module Paxos1)

let opt1 =
  L1.Invariant_specific
    { abstract = Paxos1.abstraction; conflict = Paxos1.conflicts }

module Paxos2 = Protocols.Paxos.Make (struct
  let num_nodes = 3
  let proposers = [ 0; 1 ]
  let max_attempts = 1
  let max_index = 1
  let fresh_proposals = true
  let bug = Protocols.Paxos_core.No_bug
end)

module G2 = Mc_global.Bdfs.Make (Paxos2)
module L2 = Lmc.Checker.Make (Paxos2)

(* The §5.5 buggy build, with the checker-side (hot-index) driver. *)
module Buggy = Protocols.Paxos.Make (struct
  let num_nodes = 3
  let proposers = [ 0; 1; 2 ]
  let max_attempts = 2
  let max_index = 4
  let fresh_proposals = false
  let bug = Protocols.Paxos_core.Last_response_wins
end)

module L_buggy = Lmc.Checker.Make (Buggy)

let opt_buggy =
  L_buggy.Invariant_specific
    { abstract = Buggy.abstraction; conflict = Buggy.conflicts }

(* ------------------------------------------------------------------ *)
(* Figures 3-4: the primer                                             *)
(* ------------------------------------------------------------------ *)

let fig3_4 () =
  header "Figures 3-4 (primer): tree of Fig. 2, global vs local";
  let module Tree = Protocols.Tree.Make (Protocols.Tree.Paper_config) in
  let module G = Mc_global.Bdfs.Make (Tree) in
  let module L = Lmc.Checker.Make (Tree) in
  let init = Dsm.Protocol.initial_system (module Tree) in
  let g = G.run G.default_config ~invariant:Tree.received_implies_sent init in
  let l =
    L.run L.default_config ~strategy:L.General
      ~invariant:Tree.received_implies_sent init
  in
  row "global : %d global states, %d transitions (Fig. 3 draws 12 boxes)\n"
    g.stats.global_states g.stats.transitions;
  row "local  : %d node states, %d transitions, %d system states created\n"
    l.total_node_states l.transitions l.system_states_created;
  row
    "local  : %d preliminary violation (the invalid \"----r\"), %d rejected \
     by soundness verification, %d reported\n"
    l.preliminary_violations l.soundness_rejections
    (match l.sound_violation with Some _ -> 1 | None -> 0);
  row "paper  : 4 system states created; \"----r\" rejected a posteriori\n"

(* ------------------------------------------------------------------ *)
(* Figures 10-12: one-proposal Paxos sweep                             *)
(* ------------------------------------------------------------------ *)

type sweep_point = {
  depth : int;
  bdfs_time : float option;  (* None: exceeded the per-depth cap *)
  bdfs_states : int;
  bdfs_bytes : int;
  gen_time : float;
  gen_system : int;
  gen_bytes : int;
  opt_time : float;
  opt_system : int;
  opt_bytes : int;
  local_states : int;
  local_bytes : int;
}

let fig10_12 () =
  header "Figures 10-12: Paxos, 3 nodes, one proposal - sweep over depth";
  let max_depth = if !quick then 12 else 25 in
  let bdfs_cap = if !quick then 5.0 else 60.0 in
  let points = ref [] in
  let bdfs_dead = ref false in
  for depth = 0 to max_depth do
    let bdfs_time, bdfs_states, bdfs_bytes =
      if !bdfs_dead then (None, 0, 0)
      else begin
        let cfg =
          {
            G1.default_config with
            max_depth = Some depth;
            time_limit = Some bdfs_cap;
          }
        in
        let o = G1.run cfg ~invariant:Paxos1.safety (paxos1_init ()) in
        if not o.completed then begin
          bdfs_dead := true;
          (None, o.stats.global_states, o.stats.retained_bytes)
        end
        else
          (Some o.stats.elapsed, o.stats.global_states, o.stats.retained_bytes)
      end
    in
    let lmc strategy extra =
      let cfg = { L1.default_config with max_depth = Some depth } in
      let cfg = extra cfg in
      L1.run cfg ~strategy ~invariant:Paxos1.safety (paxos1_init ())
    in
    let gen = lmc L1.General (fun c -> c) in
    let opt = lmc opt1 (fun c -> c) in
    let local =
      lmc opt1 (fun c -> { c with L1.create_system_states = false })
    in
    points :=
      {
        depth;
        bdfs_time;
        bdfs_states;
        bdfs_bytes;
        gen_time = gen.elapsed;
        gen_system = gen.system_states_created;
        gen_bytes = gen.retained_bytes;
        opt_time = opt.elapsed;
        opt_system = opt.system_states_created;
        opt_bytes = opt.retained_bytes;
        local_states = local.total_node_states;
        local_bytes = local.retained_bytes;
      }
      :: !points
  done;
  let points = List.rev !points in
  let pp_time = function
    | Some t -> Printf.sprintf "%10.4f" t
    | None -> Printf.sprintf "%10s" ">cap"
  in
  row "\n-- Figure 10: elapsed seconds vs depth --\n";
  row "%5s %10s %10s %10s\n" "depth" "B-DFS" "LMC-GEN" "LMC-OPT";
  List.iter
    (fun p ->
      row "%5d %s %10.4f %10.4f\n" p.depth (pp_time p.bdfs_time) p.gen_time
        p.opt_time)
    points;
  row "\n-- Figure 11: states vs depth --\n";
  row "%5s %12s %14s %14s %10s\n" "depth" "B-DFS-global" "LMC-GEN-system"
    "LMC-OPT-system" "LMC-local";
  List.iter
    (fun p ->
      row "%5d %12d %14d %14d %10d\n" p.depth p.bdfs_states p.gen_system
        p.opt_system p.local_states)
    points;
  row "\n-- Figure 12: retained memory (bytes) vs depth --\n";
  row "%5s %12s %12s %12s %12s\n" "depth" "B-DFS" "LMC-GEN" "LMC-OPT"
    "LMC-local";
  List.iter
    (fun p ->
      row "%5d %12d %12d %12d %12d\n" p.depth p.bdfs_bytes p.gen_bytes
        p.opt_bytes p.local_bytes)
    points;
  row
    "\npaper shapes: B-DFS time explodes exponentially; LMC-OPT finishes the \
     whole space in ms;\nLMC-OPT creates 0 system states; LMC memory stays \
     flat and linear in depth.\n";
  Bench_out.record "fig10-12"
    (Dsm.Json.List
       (List.map
          (fun p ->
            Dsm.Json.Obj
              [
                ("depth", Dsm.Json.Int p.depth);
                ( "bdfs_s",
                  match p.bdfs_time with
                  | Some t -> Dsm.Json.Float t
                  | None -> Dsm.Json.Null );
                ("bdfs_states", Dsm.Json.Int p.bdfs_states);
                ("bdfs_bytes", Dsm.Json.Int p.bdfs_bytes);
                ("lmc_gen_s", Dsm.Json.Float p.gen_time);
                ("lmc_gen_system", Dsm.Json.Int p.gen_system);
                ("lmc_gen_bytes", Dsm.Json.Int p.gen_bytes);
                ("lmc_opt_s", Dsm.Json.Float p.opt_time);
                ("lmc_opt_system", Dsm.Json.Int p.opt_system);
                ("lmc_opt_bytes", Dsm.Json.Int p.opt_bytes);
                ("lmc_local_states", Dsm.Json.Int p.local_states);
                ("lmc_local_bytes", Dsm.Json.Int p.local_bytes);
              ])
          points))

(* The same sweep on the two-proposal space (5.2's wall): here B-DFS
   genuinely hits the per-depth cap the way the paper's did at 1514 s,
   and LMC meets its own wall — soundness verification — while its
   exploration stays cheap. *)
let fig10_12_two_proposals () =
  header "Figures 10-12 (two-proposal space): where both walls appear";
  let max_depth = if !quick then 14 else 22 in
  let bdfs_cap = if !quick then 5.0 else 30.0 in
  let lmc_cap = if !quick then 5.0 else 10.0 in
  let init () = Dsm.Protocol.initial_system (module Paxos2) in
  let opt2 =
    L2.Invariant_specific
      { abstract = Paxos2.abstraction; conflict = Paxos2.conflicts }
  in
  row "%5s %12s %14s | %12s %12s %12s\n" "depth" "B-DFS (s)" "B-DFS states"
    "LMC-OPT (s)" "LMC-expl (s)" "node states";
  let bdfs_dead = ref false in
  for depth = 0 to max_depth do
    let bdfs =
      if !bdfs_dead then None
      else begin
        let cfg =
          {
            G2.default_config with
            max_depth = Some depth;
            time_limit = Some bdfs_cap;
          }
        in
        let o = G2.run cfg ~invariant:Paxos2.safety (init ()) in
        if not o.completed then begin
          bdfs_dead := true;
          None
        end
        else Some o
      end
    in
    let l =
      L2.run
        {
          L2.default_config with
          max_depth = Some depth;
          time_limit = Some lmc_cap;
        }
        ~strategy:opt2 ~invariant:Paxos2.safety (init ())
    in
    let le =
      L2.run
        {
          L2.default_config with
          max_depth = Some depth;
          time_limit = Some lmc_cap;
          create_system_states = false;
        }
        ~strategy:opt2 ~invariant:Paxos2.safety (init ())
    in
    (match bdfs with
    | Some o ->
        row "%5d %12.4f %14d | %12.4f %12.4f %12d\n" depth o.stats.elapsed
          o.stats.global_states l.elapsed le.elapsed le.total_node_states
    | None ->
        row "%5d %12s %14s | %12.4f %12.4f %12d\n" depth ">cap" "-" l.elapsed
          le.elapsed le.total_node_states)
  done;
  row
    "\npaper shape (5.2): the global approach stops fitting any budget; \
     LMC's own wall arrives\ntoo - not in exploration (LMC-expl stays cheap) \
     but in soundness verification of\ncross-branch combinations, the cost \
     the paper names as the major contributor.\n"

(* ------------------------------------------------------------------ *)
(* Figure 13: overhead breakdown on buggy Paxos                        *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  header
    "Figure 13: LMC overheads, Paxos with the 5.5 bug, from the 5.5 snapshot";
  let snapshot = Protocols.Scenarios.wids_snapshot (module Buggy) in
  let max_depth = if !quick then 16 else 30 in
  let cap = if !quick then 10.0 else 60.0 in
  row "%5s %12s %16s %12s %10s %10s\n" "depth" "LMC-OPT" "LMC-system-state"
    "LMC-explore" "prelim" "found";
  let series = ref [] in
  let found_at = ref None in
  for depth = 2 to max_depth do
    if !found_at = None || depth <= Option.value ~default:0 !found_at + 2
    then begin
      let base =
        {
          L_buggy.default_config with
          max_depth = Some depth;
          time_limit = Some cap;
          local_action_bound = Some 1;
        }
      in
      let full =
        L_buggy.run base ~strategy:opt_buggy ~invariant:Buggy.safety snapshot
      in
      let no_sound =
        L_buggy.run
          { base with verify_soundness = false }
          ~strategy:opt_buggy ~invariant:Buggy.safety snapshot
      in
      let explore_only =
        L_buggy.run
          { base with create_system_states = false }
          ~strategy:opt_buggy ~invariant:Buggy.safety snapshot
      in
      let hit = full.sound_violation <> None in
      if hit && !found_at = None then begin
        found_at := Some depth;
        ignore no_sound
      end;
      row "%5d %12.4f %16.4f %12.4f %10d %10s\n" depth full.elapsed
        no_sound.elapsed explore_only.elapsed full.preliminary_violations
        (if hit then "BUG" else "-");
      series :=
        Dsm.Json.Obj
          [
            ("depth", Dsm.Json.Int depth);
            ("full_s", Dsm.Json.Float full.elapsed);
            ("system_state_s", Dsm.Json.Float no_sound.elapsed);
            ("explore_s", Dsm.Json.Float explore_only.elapsed);
            ( "preliminary_violations",
              Dsm.Json.Int full.preliminary_violations );
            ("bug", Dsm.Json.Bool hit);
          ]
        :: !series;
      if hit && depth = Option.value ~default:max_int !found_at then begin
        row
          "\nat the revealing depth: %d soundness invocations, %.2f ms \
           average, %d combination checks\n"
          full.soundness_calls
          (1000. *. full.soundness_time
          /. float_of_int (max 1 full.soundness_calls))
          full.sequences_checked;
        row "(paper: 773 invocations, 45 ms average, 427,731 sequences)\n"
      end
    end
  done;
  row
    "\npaper shape: system-state creation cost appears once conflicting \
     values exist;\nsoundness verification dominates as the bug nears; \
     LMC-explore stays cheap.\n";
  Bench_out.record "fig13" (Dsm.Json.List (List.rev !series))

(* ------------------------------------------------------------------ *)
(* Table 5.1: headline totals                                          *)
(* ------------------------------------------------------------------ *)

let table51 () =
  header "Table 5.1: one-proposal Paxos, full state space";
  let g = G1.run G1.default_config ~invariant:Paxos1.safety (paxos1_init ()) in
  let gen =
    L1.run L1.default_config ~strategy:L1.General ~invariant:Paxos1.safety
      (paxos1_init ())
  in
  let opt =
    L1.run L1.default_config ~strategy:opt1 ~invariant:Paxos1.safety
      (paxos1_init ())
  in
  row "%-28s %12s %12s %12s\n" "" "B-DFS" "LMC-GEN" "LMC-OPT";
  row "%-28s %12.3f %12.3f %12.3f\n" "time (s)" g.stats.elapsed gen.elapsed
    opt.elapsed;
  row "%-28s %12d %12d %12d\n" "transitions" g.stats.transitions
    gen.transitions opt.transitions;
  row "%-28s %12d %12d %12d\n" "states (global/node)" g.stats.global_states
    gen.total_node_states opt.total_node_states;
  row "%-28s %12d %12d %12d\n" "system states" g.stats.system_states
    gen.system_states_created opt.system_states_created;
  row "%-28s %12d %12d %12d\n" "retained bytes" g.stats.retained_bytes
    gen.retained_bytes opt.retained_bytes;
  row "\ntransition reduction: %.0fx (paper: 157,332 / 1,186 = ~132x)\n"
    (float_of_int g.stats.transitions /. float_of_int (max 1 gen.transitions));
  row
    "LMC-GEN speedup: %.0fx (paper ~300x); LMC-OPT speedup: %.0fx (paper \
     ~8000x)\n"
    (g.stats.elapsed /. max 1e-9 gen.elapsed)
    (g.stats.elapsed /. max 1e-9 opt.elapsed);
  let lmc_cols (r : L1.result) =
    Dsm.Json.Obj
      [
        ("elapsed_s", Dsm.Json.Float r.elapsed);
        ("transitions", Dsm.Json.Int r.transitions);
        ("node_states", Dsm.Json.Int r.total_node_states);
        ("system_states", Dsm.Json.Int r.system_states_created);
        ("retained_bytes", Dsm.Json.Int r.retained_bytes);
      ]
  in
  Bench_out.record "table5.1"
    (Dsm.Json.Obj
       [
         ( "bdfs",
           Dsm.Json.Obj
             [
               ("elapsed_s", Dsm.Json.Float g.stats.elapsed);
               ("transitions", Dsm.Json.Int g.stats.transitions);
               ("global_states", Dsm.Json.Int g.stats.global_states);
               ("system_states", Dsm.Json.Int g.stats.system_states);
               ("retained_bytes", Dsm.Json.Int g.stats.retained_bytes);
             ] );
         ("lmc_gen", lmc_cols gen);
         ("lmc_opt", lmc_cols opt);
       ])

(* ------------------------------------------------------------------ *)
(* Table 5.2: scalability limits, two proposals                        *)
(* ------------------------------------------------------------------ *)

let table52 () =
  header "Table 5.2: two proposals - where the explosion bites";
  let budget = if !quick then 20.0 else 120.0 in
  row "per-algorithm budget: %.0f s (paper ran for hours)\n\n" budget;
  let init () = Dsm.Protocol.initial_system (module Paxos2) in
  let gcfg = { G2.default_config with time_limit = Some budget } in
  let g = G2.run gcfg ~invariant:Paxos2.safety (init ()) in
  row
    "B-DFS   : depth %2d reached, %d states, %d transitions, completed=%b\n"
    g.stats.max_depth_reached g.stats.global_states g.stats.transitions
    g.completed;
  let lcfg = { L2.default_config with time_limit = Some budget } in
  let opt2 =
    L2.Invariant_specific
      { abstract = Paxos2.abstraction; conflict = Paxos2.conflicts }
  in
  let l = L2.run lcfg ~strategy:opt2 ~invariant:Paxos2.safety (init ()) in
  row
    "LMC-OPT : node depth %2d, system depth %2d, %d node states, %d \
     preliminary violations (cross-branch), all-rejected=%b, completed=%b\n"
    l.max_node_depth l.max_system_depth l.total_node_states
    l.preliminary_violations
    (l.soundness_rejections = l.preliminary_violations
    && l.sound_violation = None)
    l.completed;
  row
    "LMC-OPT : soundness verification consumed %.1f%% of the run (paper: the \
     major contributor)\n"
    (100. *. l.soundness_time /. max 1e-9 l.elapsed);
  row
    "\npaper shape: neither algorithm finishes; B-DFS gets stuck shallow \
     (20/41), LMC reaches\nmuch deeper (39/68) with soundness verification \
     as the dominating cost.\n"

(* ------------------------------------------------------------------ *)
(* Tables 5.5 / 5.6: online bug hunts                                  *)
(* ------------------------------------------------------------------ *)

let table55 () =
  header "Table 5.5: online checking finds the WiDS Paxos bug";
  let module Live = Protocols.Paxos.Make (struct
    let num_nodes = 3
    let proposers = [ 0; 1; 2 ]
    let max_attempts = 2
    let max_index = 16
    let fresh_proposals = true
    let bug = Protocols.Paxos_core.Last_response_wins
  end) in
  let module Check = Protocols.Paxos.Make (struct
    let num_nodes = 3
    let proposers = [ 0; 1; 2 ]
    let max_attempts = 2
    let max_index = 16
    let fresh_proposals = false
    let bug = Protocols.Paxos_core.Last_response_wins
  end) in
  let module Online_p = Online.Online_mc.Make (Live) (Check) in
  let module Sim_p = Sim.Live_sim.Make (Live) in
  let link =
    Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05 ~latency_max:0.3 ()
  in
  let config =
    {
      Online_p.sim =
        {
          Sim_p.seed = 7;
          link;
          timer_min = 2.0;
          timer_max = 20.0;
          action_prob = None;
          faults = Fault.Plan.empty;
        };
      check_interval = 30.0;
      max_live_time = 3600.0;
      checker =
        {
          Online_p.Checker.default_config with
          time_limit = Some 5.0;
          max_transitions = Some 100_000;
        };
      action_bounds = [ 1; 2 ];
      steer = false;
      steer_scope = `Exact_action;
      supervisor = Online_p.default_supervisor;
      store = None;
    }
  in
  let strategy =
    Online_p.Checker.Invariant_specific
      { abstract = Check.abstraction; conflict = Check.conflicts }
  in
  let outcome = Online_p.run config ~strategy ~invariant:Check.safety in
  (match outcome.report with
  | Some r ->
      row
        "bug found after %.0f simulated seconds (paper: 1150 s), LMC run #%d\n"
        r.live_time r.checks_run;
      row
        "revealing run: %.3f s, witness of %d events (paper: found in 11 s)\n"
        r.result.Online_p.Checker.elapsed
        (List.length r.violation.Online_p.Checker.schedule)
  | None ->
      row "NOT FOUND within %.0f simulated seconds\n" config.max_live_time);
  row "total checking time across restarts: %.1f s in %d runs\n"
    outcome.total_check_time outcome.total_checks

let table56 () =
  header "Table 5.6: online checking finds the 1Paxos ++ bug";
  let module OP = Protocols.Onepaxos.Make (struct
    let num_nodes = 3
    let max_leader_claims = 2
    let max_attempts = 1
    let max_index = 12
    let max_util_entries = 3
    let max_util_attempts = 2
    let bug = Protocols.Onepaxos.Postfix_increment
  end) in
  let module Online_p = Online.Online_mc.Make (OP) (OP) in
  let module Sim_p = Sim.Live_sim.Make (OP) in
  let link =
    Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05 ~latency_max:0.3 ()
  in
  let config =
    {
      Online_p.sim =
        {
          Sim_p.seed = 9;
          link;
          timer_min = 2.0;
          timer_max = 20.0;
          action_prob =
            Some
              (fun _ a ->
                match a with
                | Protocols.Onepaxos.Claim_leadership -> 0.1
                | _ -> 1.0);
        faults = Fault.Plan.empty;
        };
      check_interval = 10.0;
      max_live_time = 3600.0;
      checker =
        {
          Online_p.Checker.default_config with
          time_limit = Some 5.0;
          max_transitions = Some 100_000;
        };
      action_bounds = [ 1; 2 ];
      steer = false;
      steer_scope = `Exact_action;
      supervisor = Online_p.default_supervisor;
      store = None;
    }
  in
  let strategy =
    Online_p.Checker.Invariant_specific
      { abstract = OP.abstraction; conflict = OP.conflicts }
  in
  let outcome = Online_p.run config ~strategy ~invariant:OP.safety in
  (match outcome.report with
  | Some r ->
      row
        "bug found after %.0f simulated seconds (paper: 225 s), LMC run #%d\n"
        r.live_time r.checks_run;
      row
        "witness (%d events): the stale leader proposes to its buggy cached \
         acceptor - itself -\naccepts, and chooses from its own loopback \
         Learn (the paper's exact scenario)\n"
        (List.length r.violation.Online_p.Checker.schedule)
  | None ->
      row "NOT FOUND within %.0f simulated seconds\n" config.max_live_time);
  row "total checking time across restarts: %.1f s in %d runs\n"
    outcome.total_check_time outcome.total_checks

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_chain () =
  header
    "Ablation 4.3: chain vs Paxos - LMC's advantage needs parallel network \
     activity";
  let module Chain = Protocols.Chain.Make (struct
    let length = 8
  end) in
  let module Gc = Mc_global.Bdfs.Make (Chain) in
  let module Lc = Lmc.Checker.Make (Chain) in
  let cinit = Dsm.Protocol.initial_system (module Chain) in
  let gc = Gc.run Gc.default_config ~invariant:Chain.prefix_closed cinit in
  let lc =
    Lc.run Lc.default_config ~strategy:Lc.General
      ~invariant:Chain.prefix_closed cinit
  in
  let gp = G1.run G1.default_config ~invariant:Paxos1.safety (paxos1_init ()) in
  let lp =
    L1.run L1.default_config ~strategy:opt1 ~invariant:Paxos1.safety
      (paxos1_init ())
  in
  row "%-24s %14s %14s %10s\n" "" "B-DFS trans" "LMC trans" "ratio";
  row "%-24s %14d %14d %9.1fx\n" "chain (sequential)" gc.stats.transitions
    lc.transitions
    (float_of_int gc.stats.transitions /. float_of_int (max 1 lc.transitions));
  row "%-24s %14d %14d %9.1fx\n" "Paxos (chatty)" gp.stats.transitions
    lp.transitions
    (float_of_int gp.stats.transitions /. float_of_int (max 1 lp.transitions));
  row
    "\npaper: \"we could not expect much from LMC in a chain system\"; the \
     chatty protocol\nis where eliminating the network pays.\n"

let ablation_history () =
  header "Ablation 4.2: per-state message histories (duplicate suppression)";
  let with_history =
    L1.run L1.default_config ~strategy:opt1 ~invariant:Paxos1.safety
      (paxos1_init ())
  in
  let cfg =
    {
      L1.default_config with
      use_history = false;
      max_transitions = Some 2_000_000;
      time_limit = Some (if !quick then 10.0 else 60.0);
    }
  in
  let without =
    L1.run cfg ~strategy:opt1 ~invariant:Paxos1.safety (paxos1_init ())
  in
  row "with histories    : %8d transitions, %6d node states, completed=%b\n"
    with_history.transitions with_history.total_node_states
    with_history.completed;
  row "without histories : %8d transitions, %6d node states, completed=%b\n"
    without.transitions without.total_node_states without.completed;
  row
    "\nwithout the history, a message can be re-executed on the descendants \
     of the state\nthat already consumed it (the redundancy rules (i)/(ii) \
     of 4.2 suppress this).\n"

let ablation_soundness () =
  header
    "Ablation: DAG-product soundness (ours) vs capped sequence enumeration \
     (paper 4.2)";
  let snapshot = Protocols.Scenarios.wids_snapshot (module Buggy) in
  let base =
    {
      L_buggy.default_config with
      time_limit = Some (if !quick then 15.0 else 60.0);
      local_action_bound = Some 1;
    }
  in
  let run name cfg =
    let r =
      L_buggy.run cfg ~strategy:opt_buggy ~invariant:Buggy.safety snapshot
    in
    row
      "%-22s: bug=%-5b %8.2fs  %8d soundness calls, %10d checks, %8d \
       rejections\n"
      name
      (r.sound_violation <> None)
      r.elapsed r.soundness_calls r.sequences_checked r.soundness_rejections
  in
  run "DAG product" base;
  run "sequence enumeration" { base with soundness_via_sequences = true };
  run "DAG deferred" { base with defer_soundness = true };
  run "DAG deferred, N domains"
    {
      base with
      defer_soundness = true;
      verify_domains = max 2 (Domain.recommended_domain_count ());
    };
  row
    "\nthe capped enumeration samples an exponential path space and can miss \
     the one\nschedulable combination; the DAG search covers all of them at \
     once.\ndeferral (the paper's decoupling, contribution 3) verifies \
     against the final\npredecessor DAGs - fewer, better-informed checks - \
     and parallelises across domains\n(this container has %d core(s)).\n"
    (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Ablation: automatic invariant-derived pruning (paper future work)   *)
(* ------------------------------------------------------------------ *)

let ablation_auto () =
  header
    "Ablation: automatic invariant-derived pruning (the paper's future \
     work, 7)";
  let init () = paxos1_init () in
  let run name strategy =
    let r =
      L1.run L1.default_config ~strategy ~invariant:Paxos1.safety (init ())
    in
    row "%-24s: %8d system states, %8d preliminary, %8.4f s\n" name
      r.system_states_created r.preliminary_violations r.elapsed
  in
  row "-- correct Paxos, one proposal --\n";
  run "LMC-GEN" L1.General;
  run "LMC-OPT (handcrafted)" opt1;
  run "LMC-AUTO (derived)" L1.Automatic;
  let module RTB = Protocols.Randtree.Make (struct
    let num_nodes = 4
    let max_children = 2
    let max_attempts = 1
    let bug = Protocols.Randtree.Double_bookkeeping
  end) in
  let module LR = Lmc.Checker.Make (RTB) in
  let rinit () = Dsm.Protocol.initial_system (module RTB) in
  let run name strategy =
    let r =
      LR.run LR.default_config ~strategy ~invariant:RTB.disjointness
        (rinit ())
    in
    row "%-24s: %8d system states, %8d preliminary, bug=%b, %8.4f s\n" name
      r.system_states_created r.preliminary_violations
      (r.sound_violation <> None) r.elapsed
  in
  row "-- buggy RandTree (node-local invariant) --\n";
  run "LMC-GEN" LR.General;
  run "LMC-AUTO (derived)" LR.Automatic;
  row
    "\nthe derived pruning matches the handcrafted Paxos abstraction (zero \
     combinations on a\nbug-free run) and needs no per-protocol code; \
     node-local invariants combine only when\nthe new state itself \
     violates.\n"

(* ------------------------------------------------------------------ *)
(* Breadth: every bundled protocol under both checkers                 *)
(* ------------------------------------------------------------------ *)

module Breadth_row (P : Dsm.Protocol.S) = struct
  module G = Mc_global.Bdfs.Make (P)
  module L = Lmc.Checker.Make (P)

  let run name ?strategy invariant expect_bug =
    let init () = Dsm.Protocol.initial_system (module P) in
    let g =
      G.run { G.default_config with time_limit = Some 30.0 } ~invariant
        (init ())
    in
    let strategy = match strategy with Some s -> s | None -> L.General in
    let l =
      L.run { L.default_config with time_limit = Some 30.0 } ~strategy
        ~invariant (init ())
    in
    let lmc_bug = l.sound_violation <> None in
    let global_bug = g.violation <> None in
    row "%-24s %12d %12d %7.1fx %8s  %s\n" name g.stats.transitions
      l.transitions
      (float_of_int g.stats.transitions /. float_of_int (max 1 l.transitions))
      (match (global_bug, lmc_bug) with
      | true, true -> "both"
      | false, false -> "none"
      | true, false -> "G only"
      | false, true -> "L only")
      (if expect_bug = lmc_bug && expect_bug = global_bug then ""
       else "UNEXPECTED")
end

let breadth () =
  header "Breadth: every bundled protocol, global vs local";
  row "%-24s %12s %12s %8s %8s  %s\n" "protocol" "B-DFS trans" "LMC trans"
    "ratio" "bug?" "notes";
  let module Tree = Protocols.Tree.Make (Protocols.Tree.Paper_config) in
  let module B = Breadth_row (Tree) in
  B.run "tree" Tree.received_implies_sent false;
  let module Chain = Protocols.Chain.Make (struct
    let length = 8
  end) in
  let module B = Breadth_row (Chain) in
  B.run "chain-8" Chain.prefix_closed false;
  let module Ping = Protocols.Ping.Make (struct
    let num_servers = 2
  end) in
  let module B = Breadth_row (Ping) in
  B.run "ping" Ping.no_excess_pongs false;
  let module RT = Protocols.Randtree.Make (struct
    let num_nodes = 4
    let max_children = 2
    let max_attempts = 1
    let bug = Protocols.Randtree.No_bug
  end) in
  let module B = Breadth_row (RT) in
  B.run "randtree" RT.disjointness false;
  let module RTB = Protocols.Randtree.Make (struct
    let num_nodes = 4
    let max_children = 2
    let max_attempts = 1
    let bug = Protocols.Randtree.Double_bookkeeping
  end) in
  let module B = Breadth_row (RTB) in
  B.run "randtree-buggy" RTB.disjointness true;
  let module B = Breadth_row (Paxos1) in
  B.run "paxos (1 proposal)"
    ~strategy:
      (B.L.Invariant_specific
         { abstract = Paxos1.abstraction; conflict = Paxos1.conflicts })
    Paxos1.safety false;
  let module T2 = Protocols.Twophase.Make (struct
    let num_nodes = 4
    let no_voters = [ 2 ]
    let bug = Protocols.Twophase.No_bug
  end) in
  let module B = Breadth_row (T2) in
  B.run "2pc (one no-voter)"
    ~strategy:
      (B.L.Invariant_specific
         { abstract = T2.abstraction; conflict = T2.conflicts })
    T2.atomicity false;
  let module T2B = Protocols.Twophase.Make (struct
    let num_nodes = 4
    let no_voters = [ 2 ]
    let bug = Protocols.Twophase.Commit_on_majority
  end) in
  let module B = Breadth_row (T2B) in
  B.run "2pc-buggy"
    ~strategy:
      (B.L.Invariant_specific
         { abstract = T2B.abstraction; conflict = T2B.conflicts })
    T2B.atomicity true;
  let module R = Protocols.Ring_election.Make (struct
    let num_nodes = 3
    let starters = [ 0; 1 ]
    let bug = Protocols.Ring_election.No_bug
  end) in
  let module B = Breadth_row (R) in
  B.run "ring-election"
    ~strategy:
      (B.L.Invariant_specific
         { abstract = R.abstraction; conflict = R.conflicts })
    R.agreement false;
  let module PBS = Protocols.Pb_store.Make (struct
    let key = 7
    let value = 42
    let bug = Protocols.Pb_store.No_bug
  end) in
  let module B = Breadth_row (PBS) in
  B.run "pb-store" PBS.read_your_writes false;
  let module PBSB = Protocols.Pb_store.Make (struct
    let key = 7
    let value = 42
    let bug = Protocols.Pb_store.Ack_before_replication
  end) in
  let module B = Breadth_row (PBSB) in
  B.run "pb-store-buggy" PBSB.read_your_writes true;
  let module RB = Protocols.Ring_election.Make (struct
    let num_nodes = 3
    let starters = [ 0; 1 ]
    let bug = Protocols.Ring_election.Forward_smaller
  end) in
  let module B = Breadth_row (RB) in
  B.run "ring-buggy"
    ~strategy:
      (B.L.Invariant_specific
         { abstract = RB.abstraction; conflict = RB.conflicts })
    RB.agreement true;
  row
    "\nboth checkers agree on every verdict; the transition ratio tracks \
     how chatty the protocol is.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks (bechamel): core operation costs";
  let open Bechamel in
  let snapshot = Protocols.Scenarios.wids_snapshot (module Buggy) in
  let state = snapshot.(1) in
  let env =
    Dsm.Envelope.make ~src:1 ~dst:2
      (Protocols.Paxos_core.Prepare { idx = 0; rnd = 5 })
  in
  let ms = Net.Multiset.of_list (List.init 20 (fun i -> i mod 7)) in
  let seqs =
    [|
      [
        {
          Lmc.Soundness.node = 0;
          label = Dsm.Fingerprint.of_string "a";
          requires = None;
          produces = [ Dsm.Fingerprint.of_string "m" ];
        };
      ];
      [
        {
          Lmc.Soundness.node = 1;
          label = Dsm.Fingerprint.of_string "b";
          requires = Some (Dsm.Fingerprint.of_string "m");
          produces = [];
        };
      ];
    |]
  in
  let live_scope = Obs.create () in
  let bench_counter = Obs.counter live_scope "bench.counter" in
  let bench_hist = Obs.histogram live_scope "bench.hist" in
  let tests =
    [
      Test.make ~name:"fingerprint Paxos state"
        (Staged.stage (fun () -> ignore (Dsm.Fingerprint.of_value state)));
      Test.make ~name:"handler execution (Prepare)"
        (Staged.stage (fun () ->
             ignore (Buggy.handle_message ~self:2 snapshot.(2) env)));
      Test.make ~name:"multiset add+remove"
        (Staged.stage (fun () ->
             ignore (Net.Multiset.remove 3 (Net.Multiset.add 3 ms))));
      Test.make ~name:"soundness check (2 events)"
        (Staged.stage (fun () ->
             ignore (Lmc.Soundness.check ~initial_net:[] seqs)));
      Test.make ~name:"obs counter incr"
        (Staged.stage (fun () -> Obs.Metrics.incr bench_counter));
      Test.make ~name:"obs histogram observe"
        (Staged.stage (fun () -> Obs.Metrics.observe bench_hist 1234));
      Test.make ~name:"obs event, no sink"
        (Staged.stage (fun () ->
             Obs.event Obs.null "bench.event"
               ~fields:[ ("n", Dsm.Json.Int 1) ]));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              row "%-32s %12.1f ns/run\n" name est;
              estimates := (name, Dsm.Json.Float est) :: !estimates
          | _ -> row "%-32s %12s\n" name "n/a")
        stats)
    tests;
  Bench_out.record "micro" (Dsm.Json.Obj (List.rev !estimates))

(* Satellite of the observability work: what does the instrumentation
   cost when nobody is listening?  The whole Fig. 10 LMC series runs
   under three scopes — disabled ([Obs.null]), metrics-only, and a
   full JSONL sink — and the summed checker-reported times are
   compared.  The first ratio is the always-on price and must stay
   within noise (the acceptance bar is 5%). *)
let obs_overhead () =
  header "Observability overhead: Fig. 10 LMC series under three scopes";
  let max_depth = if !quick then 12 else 16 in
  let sweep obs =
    let total = ref 0. in
    for depth = 0 to max_depth do
      let cfg = { L1.default_config with max_depth = Some depth; obs } in
      let gen =
        L1.run cfg ~strategy:L1.General ~invariant:Paxos1.safety
          (paxos1_init ())
      in
      let opt =
        L1.run cfg ~strategy:opt1 ~invariant:Paxos1.safety (paxos1_init ())
      in
      total := !total +. gen.elapsed +. opt.elapsed
    done;
    !total
  in
  let best f =
    let rec go n acc = if n = 0 then acc else go (n - 1) (min acc (f ())) in
    go 3 (f ())
  in
  let null_s = best (fun () -> sweep Obs.null) in
  let metrics_s = best (fun () -> sweep (Obs.create ())) in
  let trace = Filename.temp_file "obs_overhead" ".jsonl" in
  let sink_s =
    best (fun () ->
        let scope = Obs.create ~sinks:[ Obs.Sink.jsonl_file trace ] () in
        let t = sweep scope in
        Obs.close scope;
        t)
  in
  Sys.remove trace;
  let pct x = 100. *. (x /. max 1e-9 null_s -. 1.) in
  row "%-28s %10.4f s\n" "disabled (Obs.null)" null_s;
  row "%-28s %10.4f s  (%+.1f%%)\n" "metrics only" metrics_s (pct metrics_s);
  row "%-28s %10.4f s  (%+.1f%%)\n" "metrics + JSONL sink" sink_s (pct sink_s);
  Bench_out.record "obs-overhead"
    (Dsm.Json.Obj
       [
         ("null_s", Dsm.Json.Float null_s);
         ("metrics_s", Dsm.Json.Float metrics_s);
         ("sink_s", Dsm.Json.Float sink_s);
         ("metrics_pct", Dsm.Json.Float (pct metrics_s));
         ("sink_pct", Dsm.Json.Float (pct sink_s));
       ])

(* What do the three live-telemetry pillars cost when all of them are
   on at once?  The Fig. 10 LMC-GEN series runs under a disabled scope
   and under a scope with the sampling profiler, the soak-timeseries
   ring AND a live /metrics exporter attached (a scraping thread
   sharing the process), interleaved at depth granularity with the
   per-(mode, depth) minimum kept, like the recorder bench below.  The
   acceptance bar is 5%. *)
let telemetry_overhead () =
  header "Live telemetry overhead: Fig. 10 LMC-GEN series, off vs full";
  (* The 5% bar is defined on the full Fig. 10 sweep, where combination
     checking dominates; stopping at depth 12 would inflate the ratio
     (frame push/pop scales with transitions, combination work grows
     much faster with depth).  Quick mode trims rounds, not depth —
     this section is a CI gate. *)
  let max_depth = 18 in
  let run_one depth obs =
    let cfg = { L1.default_config with max_depth = Some depth; obs } in
    let r =
      L1.run cfg ~strategy:L1.General ~invariant:Paxos1.safety
        (paxos1_init ())
    in
    r.elapsed
  in
  let ts_path = Filename.temp_file "telemetry_overhead" ".jsonl" in
  let metrics = Obs.Metrics.create () in
  let profiler = Obs.Prof.create () in
  let timeseries = Obs.Timeseries.create ~interval:0.5 ~metrics ts_path in
  let exporter = Obs.Exporter.start ~metrics ~port:0 () in
  let scope = Obs.create ~metrics ~profiler ~timeseries () in
  let rounds = if !quick then 3 else 12 in
  let off = Array.make (max_depth + 1) infinity in
  let tel = Array.make (max_depth + 1) infinity in
  for _ = 1 to rounds do
    for depth = 0 to max_depth do
      off.(depth) <- min off.(depth) (run_one depth Obs.null);
      tel.(depth) <- min tel.(depth) (run_one depth scope)
    done
  done;
  Obs.Exporter.stop exporter;
  Obs.close scope;
  Sys.remove ts_path;
  let sum = Array.fold_left ( +. ) 0. in
  let off_s = sum off and tel_s = sum tel in
  let pct = 100. *. (tel_s /. max 1e-9 off_s -. 1.) in
  let bar = 5.0 in
  row "%-36s %10.4f s\n" "telemetry off (Obs.null)" off_s;
  row "%-36s %10.4f s  (%+.1f%%)\n"
    "profiler + timeseries + /metrics" tel_s pct;
  if pct > bar then
    row "WARNING: telemetry overhead %.1f%% exceeds the %.0f%% bar\n" pct bar;
  Bench_out.record "telemetry-overhead"
    (Dsm.Json.Obj
       [
         ("off_s", Dsm.Json.Float off_s);
         ("telemetry_s", Dsm.Json.Float tel_s);
         ("telemetry_pct", Dsm.Json.Float pct);
         ("bar_pct", Dsm.Json.Float bar);
         ("within_bar", Dsm.Json.Bool (pct <= bar));
       ])

(* ------------------------------------------------------------------ *)
(* Flight-recorder overhead                                            *)
(* ------------------------------------------------------------------ *)

(* What does recording every explored transition cost?  The Fig. 10
   LMC-GEN series runs three ways — recorder disabled
   ([Obs.Trace.null]), streaming to a JSONL file, and ring-buffered
   (records kept in memory, dumped once at close) — and the summed
   checker-reported times are compared.  The ring is the always-on
   candidate (acceptance bar 2%); the file sink pays serialization and
   I/O per record and must stay within 10%. *)
let record_overhead () =
  header "Flight-recorder overhead: Fig. 10 LMC-GEN series, three modes";
  let max_depth = if !quick then 12 else 18 in
  let run_one depth trace =
    let cfg = { L1.default_config with max_depth = Some depth; trace } in
    let r =
      L1.run cfg ~strategy:L1.General ~invariant:Paxos1.safety
        (paxos1_init ())
    in
    r.elapsed
  in
  let path = Filename.temp_file "record_overhead" ".jsonl" in
  (* Single-digit percentages are far below the drift of a shared
     host, so the three modes are interleaved at *depth* granularity —
     off/file/ring back-to-back within milliseconds of each other see
     the same noise regime — and the per-(mode, depth) minimum over
     all rounds is kept before summing the series. *)
  let rounds = if !quick then 3 else 12 in
  let off = Array.make (max_depth + 1) infinity in
  let fil = Array.make (max_depth + 1) infinity in
  let rin = Array.make (max_depth + 1) infinity in
  for _ = 1 to rounds do
    for depth = 0 to max_depth do
      off.(depth) <- min off.(depth) (run_one depth Obs.Trace.null);
      let t = Obs.Trace.to_file path in
      let s = run_one depth t in
      Obs.Trace.close t;
      fil.(depth) <- min fil.(depth) s;
      let t = Obs.Trace.ring ~capacity:65536 path in
      let s = run_one depth t in
      Obs.Trace.close t;
      rin.(depth) <- min rin.(depth) s
    done
  done;
  let sum a = Array.fold_left ( +. ) 0. a in
  let off_s = sum off and file_s = sum fil and ring_s = sum rin in
  Sys.remove path;
  let pct x = 100. *. (x /. max 1e-9 off_s -. 1.) in
  row "%-28s %10.4f s\n" "recorder off (Trace.null)" off_s;
  row "%-28s %10.4f s  (%+.1f%%)\n" "file sink (--record)" file_s (pct file_s);
  row "%-28s %10.4f s  (%+.1f%%)\n" "ring buffer (--record-ring)" ring_s
    (pct ring_s);
  Bench_out.record "record-overhead"
    (Dsm.Json.Obj
       [
         ("off_s", Dsm.Json.Float off_s);
         ("file_s", Dsm.Json.Float file_s);
         ("ring_s", Dsm.Json.Float ring_s);
         ("file_pct", Dsm.Json.Float (pct file_s));
         ("ring_pct", Dsm.Json.Float (pct ring_s));
       ])

(* ------------------------------------------------------------------ *)
(* Scaling: worker domains (lib/par)                                   *)
(* ------------------------------------------------------------------ *)

(* The Fig. 10 LMC-GEN series and the 5.5 hunt, re-run with exploration
   fanned across a Par.Pool.  Verdicts are bit-identical across domain
   counts (the pool's contract); only wall-clock may move.  Speedup is
   bounded by the host's core count, recorded next to the numbers — on
   a single-core container the parallel runs measure pure overhead. *)
let scaling () =
  header "Scaling: exploration wall-clock vs worker domains";
  let cores = Domain.recommended_domain_count () in
  row "host cores (Domain.recommended_domain_count): %d\n" cores;
  let max_depth = if !quick then 12 else 20 in
  let best f =
    let rec go n acc = if n = 0 then acc else go (n - 1) (min acc (f ())) in
    go 2 (f ())
  in
  let sweep domains =
    let total = ref 0. in
    for depth = 0 to max_depth do
      let cfg = { L1.default_config with max_depth = Some depth; domains } in
      let r =
        L1.run cfg ~strategy:L1.General ~invariant:Paxos1.safety
          (paxos1_init ())
      in
      total := !total +. r.elapsed
    done;
    !total
  in
  let sweeps =
    List.map (fun d -> (d, best (fun () -> sweep d))) [ 1; 2; 4 ]
  in
  let base = match sweeps with (_, t) :: _ -> t | [] -> 0. in
  row "\n-- Fig. 10 LMC-GEN sweep (depths 0..%d), checker-reported time --\n"
    max_depth;
  List.iter
    (fun (d, t) ->
      row "domains=%d : %10.4f s  (speedup vs 1: %.2fx)\n" d t
        (base /. max 1e-9 t))
    sweeps;
  (* The 5.5 hunt, domains 1 vs 4; the budgeted restarts share one
     pool (Online_mc owns it for the whole run). *)
  let module Live = Protocols.Paxos.Make (struct
    let num_nodes = 3
    let proposers = [ 0; 1; 2 ]
    let max_attempts = 2
    let max_index = 16
    let fresh_proposals = true
    let bug = Protocols.Paxos_core.Last_response_wins
  end) in
  let module Check = Protocols.Paxos.Make (struct
    let num_nodes = 3
    let proposers = [ 0; 1; 2 ]
    let max_attempts = 2
    let max_index = 16
    let fresh_proposals = false
    let bug = Protocols.Paxos_core.Last_response_wins
  end) in
  let module Online_p = Online.Online_mc.Make (Live) (Check) in
  let module Sim_p = Sim.Live_sim.Make (Live) in
  let hunt domains =
    let link =
      Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05 ~latency_max:0.3
        ()
    in
    let config =
      {
        Online_p.sim =
          {
            Sim_p.seed = 7;
            link;
            timer_min = 2.0;
            timer_max = 20.0;
            action_prob = None;
            faults = Fault.Plan.empty;
          };
        check_interval = 30.0;
        max_live_time = 3600.0;
        checker =
          {
            Online_p.Checker.default_config with
            time_limit = Some 5.0;
            max_transitions = Some 100_000;
            domains;
          };
        action_bounds = [ 1; 2 ];
        steer = false;
        steer_scope = `Exact_action;
        supervisor = Online_p.default_supervisor;
        store = None;
      }
    in
    let strategy =
      Online_p.Checker.Invariant_specific
        { abstract = Check.abstraction; conflict = Check.conflicts }
    in
    let outcome = Online_p.run config ~strategy ~invariant:Check.safety in
    (outcome.Online_p.report <> None, outcome.Online_p.total_check_time)
  in
  row "\n-- 5.5 hunt (WiDS Paxos bug), total checking time --\n";
  let hunts =
    List.map
      (fun d ->
        let found, t = hunt d in
        row "domains=%d : found=%-5b %10.4f s\n" d found t;
        (d, found, t))
      [ 1; 4 ]
  in
  let hunt_base = match hunts with (_, _, t) :: _ -> t | [] -> 0. in
  (match List.rev hunts with
  | (d, _, t) :: _ when d <> 1 ->
      row "hunt speedup at %d domains: %.2fx (host has %d core(s))\n" d
        (hunt_base /. max 1e-9 t)
        cores
  | _ -> ());
  Bench_out.record "scaling"
    (Dsm.Json.Obj
       [
         ("cores", Dsm.Json.Int cores);
         ( "lmc_gen_sweep",
           Dsm.Json.List
             (List.map
                (fun (d, t) ->
                  Dsm.Json.Obj
                    [
                      ("domains", Dsm.Json.Int d);
                      ("elapsed_s", Dsm.Json.Float t);
                      ("speedup", Dsm.Json.Float (base /. max 1e-9 t));
                    ])
                sweeps) );
         ( "hunt_5_5",
           Dsm.Json.List
             (List.map
                (fun (d, found, t) ->
                  Dsm.Json.Obj
                    [
                      ("domains", Dsm.Json.Int d);
                      ("found", Dsm.Json.Bool found);
                      ("check_time_s", Dsm.Json.Float t);
                      ("speedup", Dsm.Json.Float (hunt_base /. max 1e-9 t));
                    ])
                hunts) );
       ])

(* ------------------------------------------------------------------ *)
(* Par functorization guard (lib/lint)                                 *)
(* ------------------------------------------------------------------ *)

(* Deque and Shard_tbl are functors over their synchronisation
   primitives so the interleaving checker can interpose on every
   shared access; the production fast path must not pay for that.
   The default [Par.Deque] is [Make (Primitives.Native)] applied at
   library build time — re-applying the same functor here and racing
   the two instantiations through the pool's hot sequence (push/pop
   with an occasional steal; add_if_absent/find for the table) makes
   any functor-boundary cost show up as a throughput gap.  Expected
   and asserted by EXPERIMENTS.md: within run-to-run noise. *)
let par_functor () =
  header "lib/par functorization: default vs re-applied Make (Native)";
  let ops = if !quick then 2_000_000 else 10_000_000 in
  let best f =
    let rec go n acc =
      if n = 0 then acc else go (n - 1) (min acc (f ()))
    in
    go 2 (f ())
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let bench_deque (module D : Par.Deque.S) () =
    time (fun () ->
        let q = D.create () in
        for i = 1 to ops do
          D.push q i;
          if i land 7 = 0 then ignore (D.steal q) else ignore (D.pop q)
        done)
  in
  let bench_tbl (module T : Par.Shard_tbl.S) () =
    time (fun () ->
        let t = T.create 1024 in
        for i = 1 to ops do
          ignore (T.add_if_absent t (i land 1023) i);
          ignore (T.find_opt t (i land 1023))
        done)
  in
  let module D2 = Par.Deque.Make (Par.Primitives.Native) in
  let module T2 = Par.Shard_tbl.Make (Par.Primitives.Native) in
  let dq_def = best (bench_deque (module Par.Deque)) in
  let dq_fun = best (bench_deque (module D2)) in
  let tb_def = best (bench_tbl (module Par.Shard_tbl)) in
  let tb_fun = best (bench_tbl (module T2)) in
  let pct a b = 100. *. (b /. max 1e-9 a -. 1.) in
  row "%d ops each, best of 3:\n" ops;
  row "%-34s %10.4f s\n" "Deque (library instantiation)" dq_def;
  row "%-34s %10.4f s  (%+.1f%%)\n" "Deque (re-applied Make(Native))" dq_fun
    (pct dq_def dq_fun);
  row "%-34s %10.4f s\n" "Shard_tbl (library instantiation)" tb_def;
  row "%-34s %10.4f s  (%+.1f%%)\n" "Shard_tbl (re-applied Make(Native))"
    tb_fun (pct tb_def tb_fun);
  Bench_out.record "par-functor"
    (Dsm.Json.Obj
       [
         ("ops", Dsm.Json.Int ops);
         ("deque_default_s", Dsm.Json.Float dq_def);
         ("deque_functor_s", Dsm.Json.Float dq_fun);
         ("deque_delta_pct", Dsm.Json.Float (pct dq_def dq_fun));
         ("shard_tbl_default_s", Dsm.Json.Float tb_def);
         ("shard_tbl_functor_s", Dsm.Json.Float tb_fun);
         ("shard_tbl_delta_pct", Dsm.Json.Float (pct tb_def tb_fun));
       ])

(* ------------------------------------------------------------------ *)
(* Fault-injector overhead                                             *)
(* ------------------------------------------------------------------ *)

(* The injector sits on the live sim's send/deliver hot path, so an
   empty plan must cost (nearly) nothing: one boolean test per send
   and two per delivery.  The bundled protocols all quiesce (finite
   spaces, by design), which would leave the run timer-dominated, so
   the deployment here is a token ring whose every timer tick launches
   a 32-hop token — sends dominate, handlers are trivial, and any
   injector cost is proportionally at its worst.  Three runs: empty
   plan (the gated fast path), an "inert" plan whose clauses are all
   windowed past the horizon (pays the per-message plan scan, rolls
   nothing, trajectory bit-identical to empty), and an active plan for
   reference (different trajectory; reported, not compared).
   Acceptance bar (EXPERIMENTS.md): the empty plan within 5% of the
   pre-injector simulator — validated by an A/B against the seed
   commit on this exact deployment (bit-identical event counts); the
   inert and active columns put numbers on the scan and the injected
   work, for machines to diff across commits. *)
let fault_overhead () =
  header "Fault-injector overhead: one live deployment, three plans";
  let module P = struct
    let name = "bench-chatter"
    let num_nodes = 3

    type state = int
    type message = int (* remaining hops *)
    type action = unit

    let initial _ = 0

    let fwd self ttl =
      if ttl <= 0 then []
      else
        [ Dsm.Envelope.make ~src:self ~dst:((self + 1) mod num_nodes)
            (ttl - 1) ]

    let handle_message ~self st (env : message Dsm.Envelope.t) =
      (st + 1, fwd self env.Dsm.Envelope.payload)

    let enabled_actions ~self:_ _ = [ () ]
    let handle_action ~self st () = (st + 1, fwd self 32)
    let on_recover = Dsm.Protocol.default_on_recover
    let pp_state = Format.pp_print_int
    let pp_message ppf ttl = Format.fprintf ppf "tok%d" ttl
    let pp_action ppf () = Format.pp_print_string ppf "launch"
  end in
  let module S = Sim.Live_sim.Make (P) in
  let horizon = if !quick then 500. else 3_000. in
  let plan s =
    match Fault.Plan.of_string s with Ok p -> p | Error e -> failwith e
  in
  let far = "from=9000000,until=9000001" in
  let inert =
    plan
      (Printf.sprintf "corrupt:p=0.5,%s;dup:p=0.5,%s;part:%s,cut=0+1/2" far
         far far)
  in
  let active = plan "dup:p=0.05;reorder:p=0.2,window=0.5;corrupt:p=0.01" in
  let run faults =
    let config =
      {
        S.seed = 11;
        link =
          Net.Lossy_link.create ~drop_prob:0.05 ~latency_min:0.05
            ~latency_max:0.3 ();
        timer_min = 0.5;
        timer_max = 1.5;
        action_prob = None;
        faults;
      }
    in
    let t0 = Unix.gettimeofday () in
    let sim = S.create config in
    S.run_until sim horizon;
    (Unix.gettimeofday () -. t0, S.events_executed sim, S.messages_sent sim)
  in
  (* interleaved rounds, per-mode minimum: the three plans run
     back-to-back so they see the same noise regime *)
  let rounds = if !quick then 3 else 8 in
  let empty_s = ref infinity and inert_s = ref infinity in
  let active_s = ref infinity in
  let empty_ev = ref 0 and inert_ev = ref 0 and sent = ref 0 in
  for _ = 1 to rounds do
    let t, ev, ms = run Fault.Plan.empty in
    empty_s := min !empty_s t;
    empty_ev := ev;
    sent := ms;
    let t, ev, _ = run inert in
    inert_s := min !inert_s t;
    inert_ev := ev;
    let t, _, _ = run active in
    active_s := min !active_s t
  done;
  let pct x = 100. *. (x /. max 1e-9 !empty_s -. 1.) in
  row "horizon %.0f s simulated, %d events, %d sends, best of %d:\n" horizon
    !empty_ev !sent rounds;
  row "%-28s %10.4f s\n" "empty plan (fast path)" !empty_s;
  row "%-28s %10.4f s  (%+.1f%%)\n" "inert plan (scan, no rolls)" !inert_s
    (pct !inert_s);
  row "%-28s %10.4f s  (%+.1f%%)\n" "active plan (dup+reorder+corrupt)"
    !active_s (pct !active_s);
  row "inert trajectory identical: %b\n" (!inert_ev = !empty_ev);
  Bench_out.record "fault-overhead"
    (Dsm.Json.Obj
       [
         ("horizon_s", Dsm.Json.Float horizon);
         ("events", Dsm.Json.Int !empty_ev);
         ("messages_sent", Dsm.Json.Int !sent);
         ("empty_s", Dsm.Json.Float !empty_s);
         ("inert_s", Dsm.Json.Float !inert_s);
         ("active_s", Dsm.Json.Float !active_s);
         ("inert_pct", Dsm.Json.Float (pct !inert_s));
         ("active_pct", Dsm.Json.Float (pct !active_s));
         ("inert_identical", Dsm.Json.Bool (!inert_ev = !empty_ev));
       ])

(* ------------------------------------------------------------------ *)
(* Churn: dynamic node sets under join/leave storms                     *)
(* ------------------------------------------------------------------ *)

(* The scenario harness's churn machinery — join/leave node events and
   the per-envelope membership filter in Live_sim — rides the same hot
   path every steady-state deployment pays for.  Events/sec at 100
   and 500 nodes under a storm of ten leave/rejoin pairs.  An active
   storm legitimately shrinks the workload (departed nodes break the
   forwarding chains), so the 10% bar is held against an inert plan —
   the same clauses scheduled beyond the horizon, which pays the
   mechanism cost on an identical trajectory (as in fault-overhead);
   the active storm's throughput is reported alongside. *)
let churn_bench () =
  header "Churn: dynamic node sets at 100 and 500 nodes";
  let horizon = if !quick then 60. else 300. in
  let rounds = if !quick then 3 else 6 in
  let plan_of clauses =
    match Fault.Plan.of_string (String.concat ";" clauses) with
    | Ok p -> p
    | Error e -> failwith e
  in
  (* ten leave/rejoin pairs; [base] pushes the whole storm past the
     horizon to make the inert variant *)
  let storm ?(base = 0) nodes =
    plan_of
      (List.concat_map
         (fun i ->
           let n = (1 + (i * nodes / 10)) mod nodes in
           [
             Printf.sprintf "leave:node=%d,at=%d" n (base + 5 + (4 * i));
             Printf.sprintf "join:node=%d,at=%d" n (base + 45 + (4 * i));
           ])
         [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])
  in
  let run_at nodes faults =
    let module P = struct
      let name = "bench-churn"
      let num_nodes = nodes

      type state = int
      type message = int (* remaining hops *)
      type action = unit

      let initial _ = 0

      let fwd self ttl =
        if ttl <= 0 then []
        else
          [
            Dsm.Envelope.make ~src:self
              ~dst:((self + 1) mod num_nodes)
              (ttl - 1);
          ]

      let handle_message ~self st (env : message Dsm.Envelope.t) =
        (st + 1, fwd self env.Dsm.Envelope.payload)

      let enabled_actions ~self:_ _ = [ () ]
      let handle_action ~self st () = (st + 1, fwd self 8)
      let on_recover = Dsm.Protocol.default_on_recover
      let pp_state = Format.pp_print_int
      let pp_message ppf ttl = Format.fprintf ppf "tok%d" ttl
      let pp_action ppf () = Format.pp_print_string ppf "launch"
    end in
    let module S = Sim.Live_sim.Make (P) in
    let config =
      {
        S.seed = 11;
        link =
          Net.Lossy_link.create ~drop_prob:0.05 ~latency_min:0.05
            ~latency_max:0.3 ();
        timer_min = 0.5;
        timer_max = 1.5;
        action_prob = None;
        faults;
      }
    in
    let t0 = Unix.gettimeofday () in
    let sim = S.create config in
    S.run_until sim horizon;
    (Unix.gettimeofday () -. t0, S.events_executed sim, S.churn_events sim)
  in
  let fleet_rows = ref [] in
  let ok = ref true in
  List.iter
    (fun nodes ->
      let active = storm nodes in
      let inert = storm ~base:9_000_000 nodes in
      (* interleaved rounds, per-mode minimum, as in fault-overhead *)
      let empty_s = ref infinity and inert_s = ref infinity in
      let storm_s = ref infinity in
      let empty_ev = ref 0 and inert_ev = ref 0 in
      let storm_ev = ref 0 and churn = ref 0 in
      for _ = 1 to rounds do
        let t, ev, _ = run_at nodes Fault.Plan.empty in
        empty_s := min !empty_s t;
        empty_ev := ev;
        let t, ev, _ = run_at nodes inert in
        inert_s := min !inert_s t;
        inert_ev := ev;
        let t, ev, c = run_at nodes active in
        storm_s := min !storm_s t;
        storm_ev := ev;
        churn := c
      done;
      let eps t ev = float_of_int ev /. max 1e-9 t in
      let empty_eps = eps !empty_s !empty_ev in
      let inert_eps = eps !inert_s !inert_ev in
      let storm_eps = eps !storm_s !storm_ev in
      let within = !inert_ev = !empty_ev && inert_eps >= 0.9 *. empty_eps in
      ok := !ok && within;
      row
        "%4d nodes: empty %10.0f ev/s, inert %10.0f ev/s, storm %10.0f \
         ev/s (%d churn)  %s\n"
        nodes empty_eps inert_eps storm_eps !churn
        (if within then "ok" else "REGRESSION");
      fleet_rows :=
        ( string_of_int nodes,
          Dsm.Json.Obj
            [
              ("empty_events_per_s", Dsm.Json.Float empty_eps);
              ("inert_events_per_s", Dsm.Json.Float inert_eps);
              ("storm_events_per_s", Dsm.Json.Float storm_eps);
              ("churn_events", Dsm.Json.Int !churn);
              ("inert_identical", Dsm.Json.Bool (!inert_ev = !empty_ev));
              ("within", Dsm.Json.Bool within);
            ] )
        :: !fleet_rows)
    [ 100; 500 ];
  row "inert-churn throughput within 10%% of the empty plan: %b\n" !ok;
  Bench_out.record "churn"
    (Dsm.Json.Obj
       [
         ("horizon_s", Dsm.Json.Float horizon);
         ("fleets", Dsm.Json.Obj (List.rev !fleet_rows));
         ("churn_within_bar", Dsm.Json.Bool !ok);
       ])

(* ------------------------------------------------------------------ *)
(* lib/store: mmap'd visited set vs the heap table, and warm restarts   *)
(* ------------------------------------------------------------------ *)

(* The Fig. 10 axis the paper frames as "state explosion vs RAM": with
   the visited set in an mmap'd store file, fingerprints live in the
   page cache instead of the OCaml heap, so RAM stops bounding the
   explorable space.  The bar is that the mmap store holds states/sec
   within ~25% of the heap table; a warm rerun against a completed
   store file then revisits nothing (the incremental-restart story). *)
let store_bench () =
  header "lib/store: B-DFS visited set, RAM vs mmap (Fig. 10 axis)";
  let depths = if !quick then [ 6; 8; 10 ] else [ 8; 10; 12; 14 ] in
  let dir = Filename.temp_file "lmc-bench-store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rss () =
    Gc.compact ();
    match Store.Rss.sample_bytes () with Some b -> b | None -> 0
  in
  let points =
    List.map
      (fun depth ->
        let cfg =
          {
            G1.default_config with
            max_depth = Some depth;
            time_limit = Some (if !quick then 5.0 else 60.0);
            domains = 2;
          }
        in
        let ram = G1.run cfg ~invariant:Paxos1.safety (paxos1_init ()) in
        let ram_rss = rss () in
        let path = Filename.concat dir (Printf.sprintf "d%d.fps" depth) in
        let set = Store.Fp_set.create path in
        let mcfg = { cfg with visited_store = Some set } in
        let mmap = G1.run mcfg ~invariant:Paxos1.safety (paxos1_init ()) in
        let mmap_rss = rss () in
        let warm = G1.run mcfg ~invariant:Paxos1.safety (paxos1_init ()) in
        Store.Fp_set.close set;
        Sys.remove path;
        (depth, ram, ram_rss, mmap, mmap_rss, warm))
      depths
  in
  Unix.rmdir dir;
  let rate (o : G1.outcome) =
    if o.stats.elapsed > 0. then
      float_of_int o.stats.global_states /. o.stats.elapsed
    else 0.
  in
  row "\n-- states/sec and retained memory: heap table vs mmap store --\n";
  row "%5s %10s %10s %6s %12s %12s %10s %10s\n" "depth" "RAM-st/s"
    "mmap-st/s" "ratio" "RAM-bytes" "mmap-bytes" "warm-s" "warm-hits";
  List.iter
    (fun (depth, ram, _, mmap, _, (warm : G1.outcome)) ->
      let rr = rate ram and mr = rate mmap in
      row "%5d %10.0f %10.0f %6.2f %12d %12d %10.4f %10d\n" depth rr mr
        (if rr > 0. then mr /. rr else 0.)
        ram.stats.retained_bytes mmap.stats.retained_bytes warm.stats.elapsed
        warm.stats.store_hits)
    points;
  row
    "\nbar: mmap within ~25%% of the heap table's states/sec with the \
     visited fingerprints off the heap; the warm rerun of a completed \
     depth discovers 0 new states (cold-vs-incremental restart).\n";
  Bench_out.record "store"
    (Dsm.Json.List
       (List.map
          (fun (depth, ram, ram_rss, mmap, mmap_rss, warm) ->
            Dsm.Json.Obj
              [
                ("depth", Dsm.Json.Int depth);
                ("ram_s", Dsm.Json.Float ram.G1.stats.elapsed);
                ("ram_states", Dsm.Json.Int ram.G1.stats.global_states);
                ("ram_states_per_s", Dsm.Json.Float (rate ram));
                ("ram_bytes", Dsm.Json.Int ram.G1.stats.retained_bytes);
                ("ram_rss_bytes", Dsm.Json.Int ram_rss);
                ("cold_s", Dsm.Json.Float mmap.G1.stats.elapsed);
                ("mmap_states_per_s", Dsm.Json.Float (rate mmap));
                ("mmap_bytes", Dsm.Json.Int mmap.G1.stats.retained_bytes);
                ("mmap_rss_bytes", Dsm.Json.Int mmap_rss);
                ("warm_s", Dsm.Json.Float warm.G1.stats.elapsed);
                ("warm_new_states", Dsm.Json.Int warm.G1.stats.global_states);
                ("warm_store_hits", Dsm.Json.Int warm.G1.stats.store_hits);
                ("completed", Dsm.Json.Bool mmap.G1.completed);
              ])
          points))

(* ------------------------------------------------------------------ *)
(* Symmetry reduction                                                  *)
(* ------------------------------------------------------------------ *)

(* What does audited orbit dedup buy, and what does it cost when it
   buys nothing?  Three experiments:

   1. The Fig. 10 LMC-GEN sweep on 3-node Paxos, reduction off vs the
      audited orbit group: combinations materialized and elapsed time
      per depth, with the cut ratio recorded.  Verdict-bearing numbers
      (preliminary violations) must be bit-identical — reduction only
      skips duplicate invariant evaluations.
   2. Negative controls on protocols whose roles are genuinely
      asymmetric (chain, pb-store): the audit must license nothing,
      --symmetry auto must materialize exactly the same states as off,
      and the audit's own cost is the only overhead.
   3. (full mode) the §5.5 hunt with the checker reduced vs not: total
      checking time across restarts, same planted bug.

   The [symmetric_ok]/[asymmetric_ok] booleans gate `make bench-quick'
   in CI. *)
let symmetry_bench () =
  header "Symmetry reduction: audited orbit dedup (LMC-GEN + hunt)";
  let module Y1 = Lint.Symmetry.Make (Paxos1) in
  let y =
    Y1.run ~config:{ Y1.default_config with invariant = Some Paxos1.safety } ()
  in
  let orbit = y.Y1.verdict.Y1.orbit in
  row "paxos audit: commutation=%s orbit=%s (%d probes, %.3f s)\n"
    (Dsm.Symmetry.name y.Y1.verdict.Y1.commutation.Dsm.Symmetry.group)
    (Dsm.Symmetry.name orbit) y.Y1.stats.Y1.probes y.Y1.stats.Y1.elapsed;
  let max_depth = if !quick then 10 else 18 in
  let sweep = ref [] in
  let no_increase = ref true and verdicts_match = ref true in
  for depth = 0 to max_depth do
    let go symmetry =
      L1.run
        { L1.default_config with max_depth = Some depth; symmetry }
        ~strategy:L1.General ~invariant:Paxos1.safety (paxos1_init ())
    in
    let off = go (Dsm.Symmetry.identity_group 3) in
    let on = go orbit in
    if on.system_states_created > off.system_states_created then
      no_increase := false;
    if
      off.preliminary_violations <> on.preliminary_violations
      || (off.sound_violation = None) <> (on.sound_violation = None)
    then verdicts_match := false;
    sweep := (depth, off, on) :: !sweep
  done;
  let sweep = List.rev !sweep in
  row "\n-- LMC-GEN combinations checked vs depth, off vs reduced --\n";
  row "%5s %14s %14s %7s %10s %10s\n" "depth" "off-system" "reduced-system"
    "ratio" "off-s" "reduced-s";
  List.iter
    (fun (depth, (off : L1.result), (on : L1.result)) ->
      row "%5d %14d %14d %7.2f %10.4f %10.4f\n" depth
        off.system_states_created on.system_states_created
        (float_of_int off.system_states_created
        /. float_of_int (max 1 on.system_states_created))
        off.elapsed on.elapsed)
    sweep;
  let _, off_last, on_last = List.nth sweep (List.length sweep - 1) in
  let final_ratio =
    float_of_int off_last.system_states_created
    /. float_of_int (max 1 on_last.system_states_created)
  in
  let symmetric_ok = !no_increase && !verdicts_match && final_ratio >= 2.0 in
  row "\ncut at depth %d: %.2fx (issue bar: 2x); verdicts %s\n" max_depth
    final_ratio
    (if !verdicts_match then "bit-identical" else "DIVERGED");
  (* negative controls: asymmetric roles, the audit licenses nothing *)
  let control_results = ref [] in
  let control name audit_and_run =
    let group_name, off_states, auto_states, off_s, auto_s =
      audit_and_run ()
    in
    let states_equal = off_states = auto_states in
    let within_noise = auto_s <= (off_s *. 1.5) +. 0.05 in
    row "%-10s audit licenses %-4s  off %7d = auto %7d states  %s\n" name
      group_name off_states auto_states
      (if states_equal then "(identical)" else "(MISMATCH)");
    control_results :=
      ( name,
        Dsm.Json.Obj
          [
            ("orbit", Dsm.Json.String group_name);
            ("off_system", Dsm.Json.Int off_states);
            ("auto_system", Dsm.Json.Int auto_states);
            ("states_equal", Dsm.Json.Bool states_equal);
            ("off_s", Dsm.Json.Float off_s);
            ("auto_s", Dsm.Json.Float auto_s);
            ("within_noise", Dsm.Json.Bool within_noise);
          ] )
      :: !control_results;
    states_equal
  in
  let asym_control (type s m a)
      (module P : Dsm.Protocol.S
        with type state = s and type message = m and type action = a)
      invariant () =
    let module L = Lmc.Checker.Make (P) in
    let module Y = Lint.Symmetry.Make (P) in
    let y =
      Y.run ~config:{ Y.default_config with invariant = Some invariant } ()
    in
    let go symmetry =
      L.run
        { L.default_config with symmetry }
        ~strategy:L.General ~invariant
        (Dsm.Protocol.initial_system (module P))
    in
    let off = go (Dsm.Symmetry.identity_group P.num_nodes) in
    let auto = go y.Y.verdict.Y.orbit in
    ( Dsm.Symmetry.name y.Y.verdict.Y.orbit,
      off.L.system_states_created,
      auto.L.system_states_created,
      off.L.elapsed,
      auto.L.elapsed )
  in
  let module Chain8 = Protocols.Chain.Make (struct
    let length = 8
  end) in
  let module Pb = Protocols.Pb_store.Make (struct
    let key = 7
    let value = 42
    let bug = Protocols.Pb_store.No_bug
  end) in
  let chain_ok =
    control "chain" (asym_control (module Chain8) Chain8.prefix_closed)
  in
  let pb_ok =
    control "pb-store" (asym_control (module Pb) Pb.read_your_writes)
  in
  let asymmetric_ok = chain_ok && pb_ok in
  (* the §5.5 hunt, checker reduced vs not (full mode only: two long
     online runs) *)
  let hunt_json = ref Dsm.Json.Null in
  if not !quick then begin
    let module Live = Protocols.Paxos.Make (struct
      let num_nodes = 3
      let proposers = [ 0; 1; 2 ]
      let max_attempts = 2
      let max_index = 16
      let fresh_proposals = true
      let bug = Protocols.Paxos_core.Last_response_wins
    end) in
    let module Check = Protocols.Paxos.Make (struct
      let num_nodes = 3
      let proposers = [ 0; 1; 2 ]
      let max_attempts = 2
      let max_index = 16
      let fresh_proposals = false
      let bug = Protocols.Paxos_core.Last_response_wins
    end) in
    let module Yc = Lint.Symmetry.Make (Check) in
    let yc =
      Yc.run
        ~config:{ Yc.default_config with invariant = Some Check.safety }
        ()
    in
    let module Online_p = Online.Online_mc.Make (Live) (Check) in
    let module Sim_p = Sim.Live_sim.Make (Live) in
    let hunt symmetry =
      let link =
        Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05
          ~latency_max:0.3 ()
      in
      let config =
        {
          Online_p.sim =
            {
              Sim_p.seed = 7;
              link;
              timer_min = 2.0;
              timer_max = 20.0;
              action_prob = None;
              faults = Fault.Plan.empty;
            };
          check_interval = 30.0;
          max_live_time = 3600.0;
          checker =
            {
              Online_p.Checker.default_config with
              time_limit = Some 5.0;
              max_transitions = Some 100_000;
              symmetry;
            };
          action_bounds = [ 1; 2 ];
          steer = false;
          steer_scope = `Exact_action;
          supervisor = Online_p.default_supervisor;
          store = None;
        }
      in
      let strategy =
        Online_p.Checker.Invariant_specific
          { abstract = Check.abstraction; conflict = Check.conflicts }
      in
      Online_p.run config ~strategy ~invariant:Check.safety
    in
    let off = hunt (Dsm.Symmetry.identity_group 3) in
    let on = hunt yc.Yc.verdict.Yc.orbit in
    let found o =
      match o.Online_p.report with
      | Some r -> Printf.sprintf "found at %.0f s" r.Online_p.live_time
      | None -> "not found"
    in
    row "\n-- §5.5 hunt, checker reduced vs not --\n";
    row "off    : %s, %.1f s checking in %d runs\n" (found off)
      off.Online_p.total_check_time off.Online_p.total_checks;
    row "reduced: %s, %.1f s checking in %d runs (%.2fx)\n" (found on)
      on.Online_p.total_check_time on.Online_p.total_checks
      (off.Online_p.total_check_time
      /. max 1e-9 on.Online_p.total_check_time);
    let live_time o =
      match o.Online_p.report with
      | Some r -> Dsm.Json.Float r.Online_p.live_time
      | None -> Dsm.Json.Null
    in
    hunt_json :=
      Dsm.Json.Obj
        [
          ("off_found_at_s", live_time off);
          ("reduced_found_at_s", live_time on);
          ("off_check_time_s", Dsm.Json.Float off.Online_p.total_check_time);
          ( "reduced_check_time_s",
            Dsm.Json.Float on.Online_p.total_check_time );
          ( "check_time_ratio",
            Dsm.Json.Float
              (off.Online_p.total_check_time
              /. max 1e-9 on.Online_p.total_check_time) );
          ("off_checks", Dsm.Json.Int off.Online_p.total_checks);
          ("reduced_checks", Dsm.Json.Int on.Online_p.total_checks);
        ]
  end;
  Bench_out.record "symmetry"
    (Dsm.Json.Obj
       [
         ("orbit", Dsm.Json.String (Dsm.Symmetry.name orbit));
         ( "sweep",
           Dsm.Json.List
             (List.map
                (fun (depth, (off : L1.result), (on : L1.result)) ->
                  Dsm.Json.Obj
                    [
                      ("depth", Dsm.Json.Int depth);
                      ("off_system", Dsm.Json.Int off.system_states_created);
                      ( "reduced_system",
                        Dsm.Json.Int on.system_states_created );
                      ("orbit_hits", Dsm.Json.Int on.orbit_hits);
                      ( "ratio",
                        Dsm.Json.Float
                          (float_of_int off.system_states_created
                          /. float_of_int (max 1 on.system_states_created))
                      );
                      ("off_s", Dsm.Json.Float off.elapsed);
                      ("reduced_s", Dsm.Json.Float on.elapsed);
                    ])
                sweep) );
         ("final_ratio", Dsm.Json.Float final_ratio);
         ("verdicts_match", Dsm.Json.Bool !verdicts_match);
         ("symmetric_ok", Dsm.Json.Bool symmetric_ok);
         ("controls", Dsm.Json.Obj (List.rev !control_results));
         ("asymmetric_ok", Dsm.Json.Bool asymmetric_ok);
         ("hunt", !hunt_json);
       ])

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig3-4", fig3_4);
    ("fig10-12", fig10_12);
    ("fig10-12b", fig10_12_two_proposals);
    ("fig13", fig13);
    ("table5.1", table51);
    ("table5.2", table52);
    ("table5.5", table55);
    ("table5.6", table56);
    ("ablation-chain", ablation_chain);
    ("ablation-history", ablation_history);
    ("ablation-soundness", ablation_soundness);
    ("ablation-auto", ablation_auto);
    ("breadth", breadth);
    ("micro", micro);
    ("obs-overhead", obs_overhead);
    ("telemetry-overhead", telemetry_overhead);
    ("record-overhead", record_overhead);
    ("scaling", scaling);
    ("par-functor", par_functor);
    ("fault-overhead", fault_overhead);
    ("churn", churn_bench);
    ("store", store_bench);
    ("symmetry", symmetry_bench);
  ]

let main q o =
  quick := q;
  only := o;
  Printf.printf "LMC benchmark harness%s\n%!"
    (if !quick then " (--quick)" else "");
  List.iter
    (fun (name, f) -> if section name then Bench_out.timed name f)
    sections;
  Bench_out.write "BENCH_lmc.json";
  Printf.printf "\ndone.\n"

let () =
  let open Cmdliner in
  let quick_arg =
    let doc = "Trim time budgets and depth caps (CI-sized run)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let only_arg =
    let doc =
      "Run only the named section(s) instead of all of them; repeatable.  \
       $(docv) must be one of the section names (see the synopsis)."
    in
    let sec = Arg.enum (List.map (fun (n, _) -> (n, n)) sections) in
    Arg.(value & opt_all sec [] & info [ "only" ] ~doc ~docv:"SECTION")
  in
  let doc =
    "regenerate the paper's evaluation (tables, figures, ablations) and \
     write BENCH_lmc.json"
  in
  let info = Cmd.info "bench" ~doc in
  exit (Cmd.eval (Cmd.v info Term.(const main $ quick_arg $ only_arg)))
