(* lmc-cli: command-line front end for the local model checker.

   Subcommands:
     list   - the bundled protocol instances
     check  - model-check a protocol offline (B-DFS, LMC-GEN, LMC-OPT)
     hunt   - online checking against a simulated lossy deployment *)

open Cmdliner

type checker_kind = Bdfs | Lmc_gen | Lmc_opt | Lmc_auto

type check_params = {
  kind : checker_kind;
  max_depth : int option;
  time_limit : float option;
  verbose : bool;
  minimize : bool;
  dot : string option;  (* write the witness sequence chart here *)
  json : bool;  (* machine-readable result on stdout *)
  domains : int;  (* exploration pool width (--domains) *)
  verify_domains : int;  (* deferred-verification fan-out *)
  obs : Obs.scope;  (* --metrics-out / --trace-out / --progress *)
}

(* One bundled protocol instance, closed over its invariant, its
   optional LMC-OPT abstraction, and an online-hunt setup. *)
type runner = {
  name : string;
  description : string;
  check : check_params -> int;
  hunt :
    (obs:Obs.scope -> seed:int -> drop:float -> interval:float ->
     max_live:float -> budget:float -> steer:bool -> domains:int ->
     verify_domains:int -> int)
    option;
}

(* ------------------------------------------------------------------ *)
(* Observability plumbing                                              *)
(* ------------------------------------------------------------------ *)

(* Build the scope requested on the command line; returns it with a
   finaliser that dumps the metrics registry and closes the sinks.
   With none of the three flags this is [Obs.null] and a no-op.
   Unwritable paths must fail here, before the run, not at the end. *)
let make_scope ~metrics_out ~trace_out ~progress =
  if metrics_out = None && trace_out = None && progress = None then
    (Obs.null, fun () -> ())
  else begin
    let fail_io msg =
      Printf.eprintf "lmc_cli: %s\n%!" msg;
      exit 2
    in
    (match metrics_out with
    | Some path -> (
        try close_out (open_out_gen [ Open_wronly; Open_creat ] 0o644 path)
        with Sys_error msg -> fail_io msg)
    | None -> ());
    let sinks =
      (match trace_out with
      | Some path -> (
          try [ Obs.Sink.jsonl_file path ]
          with Sys_error msg -> fail_io msg)
      | None -> [])
      @
      match progress with
      | Some _ -> [ Obs.Sink.console ~only:[ "progress" ] () ]
      | None -> []
    in
    let scope = Obs.create ~sinks ?progress () in
    let finish () =
      (match metrics_out with
      | Some path -> (
          try Obs.write_metrics_jsonl scope path
          with Sys_error msg -> Printf.eprintf "lmc_cli: %s\n%!" msg)
      | None -> ());
      Obs.close scope
    in
    (scope, finish)
  end

(* ------------------------------------------------------------------ *)
(* Generic drivers                                                     *)
(* ------------------------------------------------------------------ *)

module Check_driver (P : Dsm.Protocol.S) = struct
  module G = Mc_global.Bdfs.Make (P)
  module L = Lmc.Checker.Make (P)
  module W = Lmc.Witness.Make (P)

  let pp_violation_trace trace =
    Format.printf "witness schedule:@.%a"
      (Dsm.Trace.pp ~pp_message:P.pp_message ~pp_action:P.pp_action)
      trace

  let maybe_minimize ~params ~invariant schedule =
    if not params.minimize then schedule
    else begin
      let init = Dsm.Protocol.initial_system (module P) in
      let predicate sys = Dsm.Invariant.check invariant sys <> None in
      let minimal = W.minimize ~init ~predicate schedule in
      if not params.json then
        Format.printf "minimized witness: %d of %d events@."
          (List.length minimal) (List.length schedule);
      minimal
    end

  let maybe_dot ~params schedule =
    match params.dot with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (W.to_dot ~title:P.name schedule);
        close_out oc;
        if not params.json then
          Format.printf "witness sequence chart written to %s@." path

  let step_strings schedule =
    List.map
      (fun step ->
        Format.asprintf "%a"
          (Dsm.Trace.pp_step ~pp_message:P.pp_message ~pp_action:P.pp_action)
          step)
      schedule

  let emit_json ~checker ~violation ~stats =
    print_endline
      (Dsm.Json.to_string
         (Dsm.Json.Obj
            ([ ("protocol", Dsm.Json.String P.name);
               ("checker", Dsm.Json.String checker) ]
            @ stats
            @ [
                ( "violation",
                  match violation with
                  | None -> Dsm.Json.Null
                  | Some (name, detail, schedule) ->
                      Dsm.Json.Obj
                        [
                          ("invariant", Dsm.Json.String name);
                          ("detail", Dsm.Json.String detail);
                          ( "witness",
                            Dsm.Json.List
                              (List.map
                                 (fun s -> Dsm.Json.String s)
                                 (step_strings schedule)) );
                        ] );
              ])))

  let run ?strategy ~invariant params =
    let init = Dsm.Protocol.initial_system (module P) in
    match params.kind with
    | Bdfs ->
        let cfg =
          {
            G.default_config with
            max_depth = params.max_depth;
            time_limit = params.time_limit;
            domains = params.domains;
            obs = params.obs;
          }
        in
        let o = G.run cfg ~invariant init in
        if not params.json then
          Format.printf
            "B-DFS: %d transitions, %d global states, %d system states, \
             depth %d, %.3f s, completed=%b@."
            o.stats.transitions o.stats.global_states o.stats.system_states
            o.stats.max_depth_reached o.stats.elapsed o.completed;
        let violation =
          Option.map
            (fun (v : G.violation) ->
              let trace = maybe_minimize ~params ~invariant v.trace in
              maybe_dot ~params trace;
              (v.violation.Dsm.Invariant.invariant,
               v.violation.Dsm.Invariant.detail, trace))
            o.violation
        in
        if params.json then
          emit_json ~checker:"bdfs" ~violation
            ~stats:
              [
                ("transitions", Dsm.Json.Int o.stats.transitions);
                ("global_states", Dsm.Json.Int o.stats.global_states);
                ("system_states", Dsm.Json.Int o.stats.system_states);
                ("max_depth", Dsm.Json.Int o.stats.max_depth_reached);
                ("domains", Dsm.Json.Int params.domains);
                ("elapsed_s", Dsm.Json.Float o.stats.elapsed);
                ("completed", Dsm.Json.Bool o.completed);
              ];
        (match violation with
        | Some (_, _, trace) ->
            if not params.json then begin
              Format.printf "VIOLATION: %a@." Dsm.Invariant.pp_violation
                (match o.violation with
                | Some v -> v.violation
                | None -> assert false);
              if params.verbose then pp_violation_trace trace
            end;
            1
        | None ->
            if not params.json then Format.printf "no violation@.";
            0)
    | Lmc_gen | Lmc_opt | Lmc_auto ->
        let strategy =
          match (params.kind, strategy) with
          | Lmc_opt, Some s -> s
          | Lmc_opt, None ->
              if not params.json then
                Format.printf
                  "note: no invariant-specific abstraction for this \
                   protocol; using the general strategy@.";
              L.General
          | Lmc_auto, _ -> L.Automatic
          | _ -> L.General
        in
        let cfg =
          {
            L.default_config with
            max_depth = params.max_depth;
            time_limit = params.time_limit;
            domains = params.domains;
            verify_domains = params.verify_domains;
            obs = params.obs;
          }
        in
        let r = L.run cfg ~strategy ~invariant init in
        if not params.json then
          Format.printf
            "LMC: %d transitions, %d node states, |I+|=%d, %d system \
             states, %d preliminary violations (%d rejected), %.3f s, \
             completed=%b@."
            r.transitions r.total_node_states r.net_messages
            r.system_states_created r.preliminary_violations
            r.soundness_rejections r.elapsed r.completed;
        let violation =
          Option.map
            (fun (v : L.violation) ->
              let schedule = maybe_minimize ~params ~invariant v.schedule in
              maybe_dot ~params schedule;
              (v.violation.Dsm.Invariant.invariant,
               v.violation.Dsm.Invariant.detail, schedule))
            r.sound_violation
        in
        if params.json then
          emit_json
            ~checker:
              (match params.kind with
              | Lmc_gen -> "lmc-gen"
              | Lmc_opt -> "lmc-opt"
              | Lmc_auto -> "lmc-auto"
              | Bdfs -> assert false)
            ~violation
            ~stats:
              [
                ("transitions", Dsm.Json.Int r.transitions);
                ("node_states", Dsm.Json.Int r.total_node_states);
                ("net_messages", Dsm.Json.Int r.net_messages);
                ("system_states", Dsm.Json.Int r.system_states_created);
                ("preliminary_violations",
                 Dsm.Json.Int r.preliminary_violations);
                ("soundness_rejections", Dsm.Json.Int r.soundness_rejections);
                (* both pools, distinguishable: exploration vs deferred
                   verification *)
                ("domains", Dsm.Json.Int params.domains);
                ("verify_domains", Dsm.Json.Int params.verify_domains);
                ("elapsed_s", Dsm.Json.Float r.elapsed);
                ("completed", Dsm.Json.Bool r.completed);
              ];
        (match violation with
        | Some (_, _, schedule) ->
            if not params.json then begin
              Format.printf "SOUND VIOLATION (%d events): %a@."
                (List.length schedule) Dsm.Invariant.pp_violation
                (match r.sound_violation with
                | Some v -> v.violation
                | None -> assert false);
              if params.verbose then pp_violation_trace schedule
            end;
            1
        | None ->
            if not params.json then Format.printf "no sound violation@.";
            0)
end

module Hunt_driver
    (Live : Dsm.Protocol.S)
    (Check : Dsm.Protocol.S
               with type state = Live.state
                and type message = Live.message
                and type action = Live.action) =
struct
  module O = Online.Online_mc.Make (Live) (Check)
  module S = Sim.Live_sim.Make (Live)

  let run ?strategy ?action_prob ~obs ~invariant ~seed ~drop ~interval
      ~max_live ~budget ~steer ~domains ~verify_domains () =
    let link =
      Net.Lossy_link.create ~drop_prob:drop ~latency_min:0.05 ~latency_max:0.3
        ()
    in
    let config =
      {
        O.sim = { S.seed; link; timer_min = 2.0; timer_max = 20.0; action_prob };
        check_interval = interval;
        max_live_time = max_live;
        checker =
          {
            O.Checker.default_config with
            time_limit = Some budget;
            max_transitions = Some 100_000;
            domains;
            verify_domains;
          };
        action_bounds = [ 1; 2 ];
        steer;
        steer_scope = `Node;
      }
    in
    let strategy =
      match strategy with Some s -> s | None -> O.Checker.General
    in
    let outcome = O.run ~obs config ~strategy ~invariant in
    (if steer then
       Format.printf
         "steering: %d veto(s) installed; live system %s@."
         (List.length outcome.vetoed)
         (match outcome.live_violation_time with
         | None -> "never violated the invariant"
         | Some t -> Printf.sprintf "violated anyway at t=%.0f s" t));
    match outcome.report with
    | Some report ->
        Format.printf "%a@." O.pp_report report;
        Format.printf "(%d LMC runs, %.2f s total checking time)@."
          outcome.total_checks outcome.total_check_time;
        1
    | None ->
        Format.printf
          "no violation within %.0f simulated seconds (%d LMC runs)@."
          max_live outcome.total_checks;
        0
end

(* ------------------------------------------------------------------ *)
(* The registry                                                        *)
(* ------------------------------------------------------------------ *)

let tree_runner =
  let module T = Protocols.Tree.Make (Protocols.Tree.Paper_config) in
  let module D = Check_driver (T) in
  {
    name = "tree";
    description = "the 5-node forwarding tree of the paper's primer (2)";
    check =
      (fun params ->
        D.run ~invariant:T.received_implies_sent params);
    hunt = None;
  }

let chain_runner =
  let module C = Protocols.Chain.Make (struct
    let length = 8
  end) in
  let module D = Check_driver (C) in
  {
    name = "chain";
    description = "8-node sequential forwarding chain (4.3's worst case)";
    check =
      (fun params ->
        D.run ~invariant:C.prefix_closed params);
    hunt = None;
  }

let ping_runner =
  let module P = Protocols.Ping.Make (struct
    let num_servers = 2
  end) in
  let module D = Check_driver (P) in
  {
    name = "ping";
    description = "client/2-server request-response micro-protocol";
    check =
      (fun params ->
        D.run ~invariant:P.no_excess_pongs params);
    hunt = None;
  }

let randtree_runner ~buggy =
  let bug =
    if buggy then Protocols.Randtree.Double_bookkeeping
    else Protocols.Randtree.No_bug
  in
  let module R = Protocols.Randtree.Make (struct
    let num_nodes = 4
    let max_children = 2
    let max_attempts = 1
    let bug = bug
  end) in
  let module D = Check_driver (R) in
  {
    name = (if buggy then "randtree-buggy" else "randtree");
    description =
      (if buggy then
         "4-node RandTree overlay with the double-bookkeeping bug"
       else "4-node RandTree overlay (children/siblings disjointness)");
    check =
      (fun params ->
        D.run ~invariant:R.disjointness params);
    hunt = None;
  }

let paxos_runner ~buggy =
  let bug =
    if buggy then Protocols.Paxos_core.Last_response_wins
    else Protocols.Paxos_core.No_bug
  in
  let module Live = Protocols.Paxos.Make (struct
    let num_nodes = 3
    let proposers = [ 0; 1; 2 ]
    let max_attempts = 2
    let max_index = 16
    let fresh_proposals = true
    let bug = bug
  end) in
  let module Check = Protocols.Paxos.Make (struct
    let num_nodes = 3
    let proposers = [ 0; 1; 2 ]
    let max_attempts = 2
    let max_index = 16
    let fresh_proposals = false
    let bug = bug
  end) in
  let module Bench = Protocols.Paxos.Make (struct
    include Protocols.Paxos.Bench_config

    let bug = bug
  end) in
  let module D = Check_driver (Bench) in
  let module H = Hunt_driver (Live) (Check) in
  {
    name = (if buggy then "paxos-buggy" else "paxos");
    description =
      (if buggy then "3-node Paxos with the 5.5 last-response bug"
       else "3-node Paxos, one proposal (the 5.1 benchmark space)");
    check =
      (fun params ->
        D.run
          ~strategy:
            (D.L.Invariant_specific
               { abstract = Bench.abstraction; conflict = Bench.conflicts })
          ~invariant:Bench.safety params);
    hunt =
      Some
        (fun ~obs ~seed ~drop ~interval ~max_live ~budget ~steer ~domains
             ~verify_domains ->
          H.run
            ~strategy:
              (H.O.Checker.Invariant_specific
                 { abstract = Check.abstraction; conflict = Check.conflicts })
            ~obs ~invariant:Check.safety ~seed ~drop ~interval ~max_live
            ~budget ~steer ~domains ~verify_domains ());
  }

let onepaxos_runner ~buggy =
  let bug =
    if buggy then Protocols.Onepaxos.Postfix_increment
    else Protocols.Onepaxos.No_bug
  in
  let module OP = Protocols.Onepaxos.Make (struct
    let num_nodes = 3
    let max_leader_claims = 2
    let max_attempts = 1
    let max_index = 12
    let max_util_entries = 3
    let max_util_attempts = 2
    let bug = bug
  end) in
  let module D = Check_driver (OP) in
  let module H = Hunt_driver (OP) (OP) in
  {
    name = (if buggy then "onepaxos-buggy" else "onepaxos");
    description =
      (if buggy then "3-node 1Paxos with the 5.6 postfix-increment bug"
       else "3-node 1Paxos over an embedded PaxosUtility");
    check =
      (fun params ->
        D.run
          ~strategy:
            (D.L.Invariant_specific
               { abstract = OP.abstraction; conflict = OP.conflicts })
          ~invariant:OP.safety params);
    hunt =
      Some
        (fun ~obs ~seed ~drop ~interval ~max_live ~budget ~steer ~domains
             ~verify_domains ->
          H.run
            ~strategy:
              (H.O.Checker.Invariant_specific
                 { abstract = OP.abstraction; conflict = OP.conflicts })
            ~action_prob:(fun _ a ->
              match a with
              | Protocols.Onepaxos.Claim_leadership -> 0.1
              | _ -> 1.0)
            ~obs ~invariant:OP.safety ~seed ~drop ~interval ~max_live ~budget
            ~steer ~domains ~verify_domains ());
  }

let twophase_runner ~buggy =
  let bug =
    if buggy then Protocols.Twophase.Commit_on_majority
    else Protocols.Twophase.No_bug
  in
  let module T = Protocols.Twophase.Make (struct
    let num_nodes = 4
    let no_voters = [ 2 ]
    let bug = bug
  end) in
  let module D = Check_driver (T) in
  {
    name = (if buggy then "2pc-buggy" else "2pc");
    description =
      (if buggy then
         "two-phase commit deciding on a majority instead of unanimity"
       else "two-phase commit, 1 coordinator + 3 participants (one no-voter)");
    check =
      (fun params ->
        D.run
          ~strategy:
            (D.L.Invariant_specific
               { abstract = T.abstraction; conflict = T.conflicts })
          ~invariant:T.atomicity params);
    hunt = None;
  }

let ring_runner ~buggy =
  let bug =
    if buggy then Protocols.Ring_election.Forward_smaller
    else Protocols.Ring_election.No_bug
  in
  let module R = Protocols.Ring_election.Make (struct
    let num_nodes = 3
    let starters = [ 0; 1 ]
    let bug = bug
  end) in
  let module D = Check_driver (R) in
  {
    name = (if buggy then "ring-buggy" else "ring");
    description =
      (if buggy then
         "Chang-Roberts election forwarding losing tokens (two leaders)"
       else "Chang-Roberts leader election on a 3-node ring");
    check =
      (fun params ->
        D.run
          ~strategy:
            (D.L.Invariant_specific
               { abstract = R.abstraction; conflict = R.conflicts })
          ~invariant:R.agreement params);
    hunt = None;
  }

let mutex_runner ~buggy =
  let bug =
    if buggy then Protocols.Token_mutex.Regenerate_token
    else Protocols.Token_mutex.No_bug
  in
  let module M = Protocols.Token_mutex.Make (struct
    let num_nodes = 3
    let contenders = [ 1; 2 ]
    let max_regenerations = 1
    let bug = bug
  end) in
  let module D = Check_driver (M) in
  {
    name = (if buggy then "mutex-buggy" else "mutex");
    description =
      (if buggy then
         "token-ring mutual exclusion regenerating an unlost token"
       else "token-ring mutual exclusion, 3 nodes, 2 contenders");
    check =
      (fun params ->
        D.run
          ~strategy:
            (D.L.Invariant_specific
               { abstract = M.abstraction; conflict = M.conflicts })
          ~invariant:M.mutual_exclusion params);
    hunt = None;
  }

let abp_runner ~buggy =
  let bug =
    if buggy then Protocols.Alternating_bit.Ignore_bit
    else Protocols.Alternating_bit.No_bug
  in
  let module A = Protocols.Alternating_bit.Make (struct
    let data = [ 10; 20 ]
    let max_retransmits = 1
    let bug = bug
  end) in
  let module FA = Protocols.Fifo.Make (A) in
  let module D = Check_driver (FA) in
  {
    name = (if buggy then "abp-buggy" else "abp");
    description =
      (if buggy then
         "alternating-bit over FIFO channels, receiver ignoring the bit"
       else "alternating-bit protocol over FIFO (TCP-like) channels");
    check =
      (fun params ->
        D.run
          ~invariant:(FA.lift_invariant A.prefix_delivery)
          params);
    hunt = None;
  }

let pb_runner ~buggy =
  let bug =
    if buggy then Protocols.Pb_store.Ack_before_replication
    else Protocols.Pb_store.No_bug
  in
  let module P = Protocols.Pb_store.Make (struct
    let key = 7
    let value = 42
    let bug = bug
  end) in
  let module D = Check_driver (P) in
  {
    name = (if buggy then "pb-store-buggy" else "pb-store");
    description =
      (if buggy then
         "primary-backup store acknowledging before replication"
       else "primary-backup store with fail-over reads");
    check =
      (fun params -> D.run ~invariant:P.read_your_writes params);
    hunt = None;
  }

let runners =
  [
    tree_runner;
    chain_runner;
    ping_runner;
    randtree_runner ~buggy:false;
    randtree_runner ~buggy:true;
    paxos_runner ~buggy:false;
    paxos_runner ~buggy:true;
    onepaxos_runner ~buggy:false;
    onepaxos_runner ~buggy:true;
    twophase_runner ~buggy:false;
    twophase_runner ~buggy:true;
    ring_runner ~buggy:false;
    ring_runner ~buggy:true;
    mutex_runner ~buggy:false;
    mutex_runner ~buggy:true;
    abp_runner ~buggy:false;
    abp_runner ~buggy:true;
    pb_runner ~buggy:false;
    pb_runner ~buggy:true;
  ]

let find_runner name =
  match List.find_opt (fun r -> r.name = name) runners with
  | Some r -> Ok r
  | None ->
      Error
        (Printf.sprintf "unknown protocol %S; try `lmc_cli list'" name)

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let doc = "List the bundled protocol instances." in
  let run () =
    Format.printf "%-16s %s@." "NAME" "DESCRIPTION";
    List.iter (fun r -> Format.printf "%-16s %s@." r.name r.description) runners;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let protocol_arg =
  let doc = "Protocol instance to check (see `list')." in
  Arg.(required & opt (some string) None & info [ "p"; "protocol" ] ~doc)

let checker_arg =
  let doc = "Checker: bdfs, lmc-gen, lmc-opt or lmc-auto." in
  let parse = function
    | "bdfs" -> Ok Bdfs
    | "lmc-gen" -> Ok Lmc_gen
    | "lmc-opt" -> Ok Lmc_opt
    | "lmc-auto" -> Ok Lmc_auto
    | s -> Error (`Msg (Printf.sprintf "unknown checker %S" s))
  in
  let print ppf k =
    Format.pp_print_string ppf
      (match k with
      | Bdfs -> "bdfs"
      | Lmc_gen -> "lmc-gen"
      | Lmc_opt -> "lmc-opt"
      | Lmc_auto -> "lmc-auto")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Lmc_opt
    & info [ "c"; "checker" ] ~doc)

let depth_arg =
  let doc = "Depth bound (events)." in
  Arg.(value & opt (some int) None & info [ "d"; "max-depth" ] ~doc)

let time_arg =
  let doc = "Wall-clock budget in seconds." in
  Arg.(value & opt (some float) (Some 60.0) & info [ "t"; "time-limit" ] ~doc)

let verbose_arg =
  let doc = "Print witness schedules." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let minimize_arg =
  let doc = "Shrink witness schedules with delta debugging before printing." in
  Arg.(value & flag & info [ "m"; "minimize" ] ~doc)

let dot_arg =
  let doc = "Write the witness as a Graphviz sequence chart to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~doc ~docv:"FILE")

let json_arg =
  let doc = "Emit a single JSON object on stdout instead of prose." in
  Arg.(value & flag & info [ "json" ] ~doc)

let metrics_out_arg =
  let doc =
    "Dump the metrics registry (counters, histograms) as JSONL to $(docv) \
     when the run finishes."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")

let trace_out_arg =
  let doc =
    "Stream structured events (new node states, preliminary and sound \
     violations, rounds, progress) as JSONL to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")

let progress_arg =
  let doc =
    "Print a progress heartbeat to stderr roughly every $(docv) seconds."
  in
  Arg.(value & opt (some float) None & info [ "progress" ] ~doc ~docv:"SECS")

(* Positive domain counts; anything below 1 is a usage error, reported
   through cmdliner rather than as a runtime invalid_arg. *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%d is not a valid count; must be >= 1" n))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let domains_arg =
  let doc =
    "Worker domains for state exploration.  1 (the default) keeps the \
     sequential path; N > 1 fans the pure half of each transition batch \
     across a work-stealing pool with verdicts identical to a sequential \
     run."
  in
  Arg.(value & opt pos_int 1 & info [ "domains" ] ~doc ~docv:"N")

let verify_domains_arg =
  let doc =
    "Worker domains for deferred soundness verification (LMC checkers \
     only; independent of --domains)."
  in
  Arg.(value & opt pos_int 1 & info [ "verify-domains" ] ~doc ~docv:"N")

let check_cmd =
  let doc = "Model-check a protocol offline from its initial state." in
  let run protocol checker max_depth time_limit verbose minimize dot json
      metrics_out trace_out progress domains verify_domains =
    match find_runner protocol with
    | Error e ->
        prerr_endline e;
        2
    | Ok r ->
        let obs, finish = make_scope ~metrics_out ~trace_out ~progress in
        Fun.protect ~finally:finish (fun () ->
            r.check
              { kind = checker; max_depth; time_limit; verbose; minimize;
                dot; json; obs; domains; verify_domains })
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run $ protocol_arg $ checker_arg $ depth_arg $ time_arg
      $ verbose_arg $ minimize_arg $ dot_arg $ json_arg $ metrics_out_arg
      $ trace_out_arg $ progress_arg $ domains_arg $ verify_domains_arg)

let seed_arg =
  let doc = "Simulation seed." in
  Arg.(value & opt int 7 & info [ "s"; "seed" ] ~doc)

let drop_arg =
  let doc = "Non-loopback message drop probability." in
  Arg.(value & opt float 0.3 & info [ "drop" ] ~doc)

let interval_arg =
  let doc = "Simulated seconds between checker restarts." in
  Arg.(value & opt float 30.0 & info [ "interval" ] ~doc)

let max_live_arg =
  let doc = "Give up after this much simulated time." in
  Arg.(value & opt float 3600.0 & info [ "max-live" ] ~doc)

let budget_arg =
  let doc = "Wall-clock budget per checker restart (seconds)." in
  Arg.(value & opt float 5.0 & info [ "budget" ] ~doc)

let steer_arg =
  let doc =
    "Execution steering: veto predicted violation triggers in the live \
     system and keep running instead of stopping at the first report."
  in
  Arg.(value & flag & info [ "steer" ] ~doc)

let hunt_cmd =
  let doc =
    "Run a simulated lossy deployment with periodic LMC restarts (online \
     model checking, 3.3)."
  in
  let run protocol seed drop interval max_live budget steer metrics_out
      trace_out progress domains verify_domains =
    match find_runner protocol with
    | Error e ->
        prerr_endline e;
        2
    | Ok { hunt = None; _ } ->
        prerr_endline "this protocol has no online-hunt setup";
        2
    | Ok { hunt = Some h; _ } ->
        let obs, finish = make_scope ~metrics_out ~trace_out ~progress in
        Fun.protect ~finally:finish (fun () ->
            h ~obs ~seed ~drop ~interval ~max_live ~budget ~steer ~domains
              ~verify_domains)
  in
  Cmd.v
    (Cmd.info "hunt" ~doc)
    Term.(
      const run $ protocol_arg $ seed_arg $ drop_arg $ interval_arg
      $ max_live_arg $ budget_arg $ steer_arg $ metrics_out_arg
      $ trace_out_arg $ progress_arg $ domains_arg $ verify_domains_arg)

let () =
  let doc = "local model checking of distributed protocols (NSDI'11)" in
  let info = Cmd.info "lmc_cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; check_cmd; hunt_cmd ]))
