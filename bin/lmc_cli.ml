(* lmc-cli: command-line front end for the local model checker.

   Subcommands:
     list   - the bundled protocol instances
     check  - model-check a protocol offline (B-DFS, LMC-GEN, LMC-OPT)
     hunt   - online checking against a simulated lossy deployment
     lint   - protocol sanitizers (determinism, canonicality, coverage)
     replay - re-execute a flight-recorder file, fail on divergence
     report - offline analysis of recorded trace/metrics streams *)

open Cmdliner

type checker_kind = Bdfs | Lmc_gen | Lmc_opt | Lmc_auto

let checker_name = function
  | Bdfs -> "bdfs"
  | Lmc_gen -> "lmc-gen"
  | Lmc_opt -> "lmc-opt"
  | Lmc_auto -> "lmc-auto"

(* The --symmetry flag.  [Sym_group] carries the CLI name ("full",
   "rot"); the degree-dependent group is resolved per protocol.  A
   named group is a *claim* and is audited before either checker may
   exploit it; [Sym_auto] infers candidates and keeps whatever
   survives its audit. *)
type sym_mode = Sym_off | Sym_auto | Sym_group of string

let sym_mode_name = function
  | Sym_off -> "off"
  | Sym_auto -> "auto"
  | Sym_group s -> s

(* Inverse of {!sym_mode_name}, for replaying a recorded run under the
   symmetry mode it was produced with (the audit is deterministic, so
   re-resolution reproduces the recorded group). *)
let sym_mode_of_name = function
  | Some "auto" -> Sym_auto
  | Some "off" | None -> Sym_off
  | Some s -> Sym_group s

type check_params = {
  kind : checker_kind;
  max_depth : int option;
  time_limit : float option;
  crash_budget : int;  (* crash-recovery events per node path (--crash-budget) *)
  verbose : bool;
  minimize : bool;
  dot : string option;  (* write the witness sequence chart here *)
  json : bool;  (* machine-readable result on stdout *)
  domains : int;  (* exploration pool width (--domains) *)
  verify_domains : int;  (* deferred-verification fan-out *)
  symmetry : sym_mode;  (* audited symmetry reduction (--symmetry) *)
  obs : Obs.scope;  (* --metrics-out / --trace-out / --progress *)
  trace : Obs.Trace.t;  (* flight recorder (--record) *)
}

(* A protocol-agnostic rendering of one sanitizer run ({!Lint.Sanitize}),
   so the registry can lint any instance behind one closure type.
   Findings are re-keyed to the registry name: module names do not
   distinguish a buggy variant from its correct twin (both paxos
   instantiations call themselves "paxos"), and the allowlist must. *)
type lint_result = {
  l_name : string;
  l_findings : Lint.Report.finding list;
  l_states : int;
  l_transitions : int;
  l_probes : int;
  l_elapsed : float;
  l_completed : bool;
}

let lint_protocol (module P : Dsm.Protocol.S) ~name ~max_depth
    ~max_transitions ~sym ?claim () =
  let module S = Lint.Sanitize.Make (P) in
  let module Y = Lint.Symmetry.Make (P) in
  let r = S.run ~config:{ S.default_config with max_depth; max_transitions } () in
  (* The symmetry audit rides along: --symmetry off skips it, a named
     group claims it for every target, and auto audits the target's
     own claim if it has one (the sym fixtures) or silently infers. *)
  let sym_claim =
    match sym with
    | Sym_off -> `Skip
    | Sym_group gname -> (
        match Dsm.Symmetry.of_name gname ~degree:P.num_nodes with
        | Some g -> `Claim g
        | None -> `Skip)
    | Sym_auto -> ( match claim with Some g -> `Claim g | None -> `Infer)
  in
  let y =
    match sym_claim with
    | `Skip -> None
    | `Infer | `Claim _ ->
        let claim =
          match sym_claim with
          | `Claim g -> Some (Dsm.Symmetry.with_id_maps g)
          | _ -> None
        in
        Some
          (Y.run
             ~config:{ Y.default_config with max_depth; max_transitions; claim }
             ())
  in
  let y_findings, y_probes, y_completed =
    match y with
    | None -> ([], 0, true)
    | Some (y : Y.result) -> (y.findings, y.stats.probes, y.completed)
  in
  {
    l_name = name;
    l_findings =
      List.map
        (fun (f : Lint.Report.finding) -> { f with protocol = name })
        (r.findings @ y_findings);
    l_states = r.stats.global_states;
    l_transitions = r.stats.transitions;
    l_probes = r.stats.probes + y_probes;
    l_elapsed = r.stats.elapsed;
    l_completed = r.completed && y_completed;
  }

(* One bundled protocol instance, closed over its invariant, its
   optional LMC-OPT abstraction, an online-hunt setup, and its
   sanitizer entry point. *)
type runner = {
  name : string;
  description : string;
  check : check_params -> int;
  hunt :
    (obs:Obs.scope -> trace:Obs.Trace.t -> seed:int -> drop:float ->
     interval:float -> max_live:float -> budget:float -> steer:bool ->
     faults:Fault.Plan.t -> crash_budget:int ->
     restart_budget_ms:int option -> max_retries:int option ->
     store_dir:string option -> resume:bool -> symmetry:sym_mode ->
     domains:int -> verify_domains:int -> int)
    option;
  lint :
    max_depth:int option -> max_transitions:int -> sym:sym_mode -> lint_result;
  replay :
    mode:string ->
    header:(string * Dsm.Json.t) list ->
    records:(string * Dsm.Json.t) list list ->
    domains:int option ->
    int;
}

(* ------------------------------------------------------------------ *)
(* Flight-recorder files (replay / report)                             *)
(* ------------------------------------------------------------------ *)

let jfield name fields = List.assoc_opt name fields
let jstr = function Some (Dsm.Json.String s) -> Some s | _ -> None
let jint = function Some (Dsm.Json.Int n) -> Some n | _ -> None
let jbool = function Some (Dsm.Json.Bool b) -> Some b | _ -> None

let ev_of fields =
  match jstr (jfield "ev" fields) with Some e -> e | None -> ""

(* Every record of one schema in a JSONL file, as field lists, in file
   order.  Foreign lines (other schemas, blank lines) are skipped so a
   trace interleaved with ordinary --trace-out events — or with the
   profiler's profile.v1 stream — still loads. *)
let load_records ~schema path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let records = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Dsm.Json.of_string line with
             | Ok (Dsm.Json.Obj fields)
               when jstr (jfield "schema" fields) = Some schema ->
                 records := fields :: !records
             | Ok _ | Error _ -> ()
         done
       with End_of_file -> ());
      List.rev !records)

let load_trace path = load_records ~schema:Obs.Trace.schema path

(* A record rendered without the sink-level framing: the wall-clock
   [ts] legitimately differs between a recording and its replay, and
   the ["event"] stream tag only exists in serialized files; every
   remaining field must match byte for byte. *)
let canonical_record fields =
  Dsm.Json.to_string
    (Dsm.Json.Obj
       (List.filter (fun (k, _) -> k <> "ts" && k <> "event") fields))

(* Re-execute every [witness] record of a trace against protocol [P];
   prints one line per witness and counts fingerprint divergences. *)
module Witness_replayer (P : Dsm.Protocol.S) = struct
  module R = Obs.Replay.Make (P)

  let replay_witnesses records =
    let witnesses = List.filter (fun f -> ev_of f = "witness") records in
    let failures = ref 0 in
    List.iteri
      (fun i fields ->
        match R.replay_witness fields with
        | Error msg ->
            incr failures;
            Format.printf "witness #%d: cannot replay: %s@." i msg
        | Ok o -> (
            match o.R.divergence with
            | Some (step, expect, got) ->
                incr failures;
                Format.printf
                  "witness #%d: DIVERGENCE at step %d: recorded fp %s, \
                   replayed fp %s@."
                  i step expect got
            | None when not o.R.final_matches ->
                incr failures;
                Format.printf
                  "witness #%d: final system fingerprint mismatch@." i
            | None ->
                Format.printf
                  "witness #%d: %d steps re-executed, fingerprints \
                   bit-identical@."
                  i o.R.steps_checked))
      witnesses;
    (List.length witnesses, !failures)
end

(* ------------------------------------------------------------------ *)
(* Observability plumbing                                              *)
(* ------------------------------------------------------------------ *)

(* The live-telemetry flag bundle shared by `check' and `hunt':
   /metrics exposition, the sampling profiler and its exports, and the
   soak timeseries ring.  All pure observers — none of them may move a
   verdict or a counter. *)
type telemetry = {
  tel_serve : int option;  (* --serve PORT: HTTP /metrics + /healthz *)
  tel_linger : float;  (* --serve-linger: keep serving after the run *)
  tel_profile : bool;  (* --profile: profile.v1 into the record file *)
  tel_flamegraph : string option;  (* collapsed-stack text *)
  tel_speedscope : string option;  (* speedscope JSON *)
  tel_timeseries : string option;  (* timeseries.v1 JSONL *)
  tel_ts_interval : float;  (* seconds between samples *)
}

let no_telemetry =
  {
    tel_serve = None;
    tel_linger = 0.;
    tel_profile = false;
    tel_flamegraph = None;
    tel_speedscope = None;
    tel_timeseries = None;
    tel_ts_interval = 1.0;
  }

let telemetry_profiling t =
  t.tel_profile || t.tel_flamegraph <> None || t.tel_speedscope <> None

(* Build the scope requested on the command line; returns it with a
   finaliser that dumps the metrics registry, writes the profiler
   exports, closes the sinks (which dumps the timeseries ring) and
   finally lingers and stops the exporter.  With no observability
   flags this is [Obs.null] and a no-op.  Unwritable paths must fail
   here, before the run, not at the end. *)
let make_scope ?(telemetry = no_telemetry) ?record ~metrics_out ~trace_out
    ~progress () =
  let profiling = telemetry_profiling telemetry in
  if
    metrics_out = None && trace_out = None && progress = None
    && telemetry.tel_serve = None && telemetry.tel_timeseries = None
    && not profiling
  then (Obs.null, fun () -> ())
  else begin
    let fail_io msg =
      Printf.eprintf "lmc_cli: %s\n%!" msg;
      exit 2
    in
    if telemetry.tel_profile && record = None then
      fail_io "--profile requires --record (profile.v1 rides the record file)";
    (match metrics_out with
    | Some path -> (
        try close_out (open_out_gen [ Open_wronly; Open_creat ] 0o644 path)
        with Sys_error msg -> fail_io msg)
    | None -> ());
    let sinks =
      (match trace_out with
      | Some path -> (
          try [ Obs.Sink.jsonl_file path ]
          with Sys_error msg -> fail_io msg)
      | None -> [])
      @
      match progress with
      | Some _ -> [ Obs.Sink.console ~only:[ "progress" ] () ]
      | None -> []
    in
    let metrics = Obs.Metrics.create () in
    let profiler = if profiling then Some (Obs.Prof.create ()) else None in
    let timeseries =
      match telemetry.tel_timeseries with
      | Some path -> (
          try
            Some
              (Obs.Timeseries.create ~interval:telemetry.tel_ts_interval
                 ~metrics path)
          with Sys_error msg -> fail_io msg)
      | None -> None
    in
    let scope =
      Obs.create ~metrics ~sinks ?progress ?profiler ?timeseries ()
    in
    let exporter =
      match telemetry.tel_serve with
      | Some port -> (
          try Some (Obs.Exporter.start ~metrics ~port ())
          with Unix.Unix_error (e, _, _) ->
            fail_io
              (Printf.sprintf "--serve %d: %s" port (Unix.error_message e)))
      | None -> None
    in
    (match exporter with
    | Some e ->
        Printf.eprintf "lmc_cli: serving /metrics on 127.0.0.1:%d\n%!"
          (Obs.Exporter.port e)
    | None -> ());
    let finish () =
      (* Order matters: the record file's trace sink is closed by the
         caller before this runs, so appending profile.v1 here keeps
         the streams whole; the metrics dump precedes the linger so a
         scraper can compare the live endpoint against the file. *)
      (match profiler with
      | Some p ->
          let export what f =
            try f ()
            with Sys_error msg ->
              Printf.eprintf "lmc_cli: %s: %s\n%!" what msg
          in
          (match record with
          | Some path ->
              export "profile" (fun () -> Obs.Prof.append_jsonl p path)
          | None -> ());
          (match telemetry.tel_flamegraph with
          | Some path ->
              export "flamegraph" (fun () -> Obs.Prof.write_collapsed p path)
          | None -> ());
          (match telemetry.tel_speedscope with
          | Some path ->
              export "speedscope" (fun () ->
                  Obs.Prof.write_speedscope p ~name:"lmc" path)
          | None -> ())
      | None -> ());
      (match metrics_out with
      | Some path -> (
          try Obs.write_metrics_jsonl scope path
          with Sys_error msg -> Printf.eprintf "lmc_cli: %s\n%!" msg)
      | None -> ());
      Obs.close scope;
      match exporter with
      | Some e ->
          if telemetry.tel_linger > 0. then Unix.sleepf telemetry.tel_linger;
          Obs.Exporter.stop e
      | None -> ()
    in
    (scope, finish)
  end

(* ------------------------------------------------------------------ *)
(* Generic drivers                                                     *)
(* ------------------------------------------------------------------ *)

(* Resolve --symmetry to what each checker may exploit: the audited
   commutation spec (B-DFS canonicalization) and the audited orbit
   group (LMC combination dedup).  Nothing is reduced without its
   audit passing here first; a claimed group that fails is demoted to
   identity with a warning, never trusted. *)
module Sym_resolver (P : Dsm.Protocol.S) = struct
  module Y = Lint.Symmetry.Make (P)

  let resolve ~invariant mode =
    match mode with
    | Sym_off ->
        ( Dsm.Symmetry.id_spec ~degree:P.num_nodes,
          Dsm.Symmetry.identity_group P.num_nodes )
    | Sym_auto | Sym_group _ ->
        let claim =
          match mode with
          | Sym_group gname -> (
              match Dsm.Symmetry.of_name gname ~degree:P.num_nodes with
              | Some g -> Some (Dsm.Symmetry.with_id_maps g)
              | None ->
                  Printf.eprintf
                    "lmc_cli: unknown symmetry group %S (use full or rot)\n%!"
                    gname;
                  exit 2)
          | _ -> None
        in
        let r =
          Y.run
            ~config:{ Y.default_config with claim; invariant = Some invariant }
            ()
        in
        List.iter
          (fun (f : Lint.Report.finding) ->
            Printf.eprintf
              "lmc_cli: symmetry claim rejected (%s: %s) — falling back to \
               identity, no reduction\n\
               %!"
              (Lint.Report.kind_to_string f.kind)
              f.subject)
          r.findings;
        Printf.eprintf
          "lmc_cli: symmetry audit: commutation=%s orbit=%s (%d probes, \
           %.3f s)\n\
           %!"
          (Dsm.Symmetry.name r.verdict.commutation.Dsm.Symmetry.group)
          (Dsm.Symmetry.name r.verdict.orbit)
          r.stats.probes r.stats.elapsed;
        (r.verdict.commutation, r.verdict.orbit)
end

module Check_driver (P : Dsm.Protocol.S) = struct
  module G = Mc_global.Bdfs.Make (P)
  module L = Lmc.Checker.Make (P)
  module W = Lmc.Witness.Make (P)
  module WR = Witness_replayer (P)
  module SR = Sym_resolver (P)

  let resolve_symmetry = SR.resolve

  let pp_violation_trace trace =
    Format.printf "witness schedule:@.%a"
      (Dsm.Trace.pp ~pp_message:P.pp_message ~pp_action:P.pp_action)
      trace

  let maybe_minimize ~params ~invariant schedule =
    if not params.minimize then schedule
    else begin
      let init = Dsm.Protocol.initial_system (module P) in
      let predicate sys = Dsm.Invariant.check invariant sys <> None in
      let minimal = W.minimize ~init ~predicate schedule in
      if not params.json then
        Format.printf "minimized witness: %d of %d events@."
          (List.length minimal) (List.length schedule);
      minimal
    end

  let maybe_dot ~params schedule =
    match params.dot with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (W.to_dot ~title:P.name schedule);
        close_out oc;
        if not params.json then
          Format.printf "witness sequence chart written to %s@." path

  let step_strings schedule =
    List.map
      (fun step ->
        Format.asprintf "%a"
          (Dsm.Trace.pp_step ~pp_message:P.pp_message ~pp_action:P.pp_action)
          step)
      schedule

  let emit_json ~checker ~violation ~stats =
    print_endline
      (Dsm.Json.to_string
         (Dsm.Json.Obj
            ([ ("protocol", Dsm.Json.String P.name);
               ("checker", Dsm.Json.String checker) ]
            @ stats
            @ [
                ( "violation",
                  match violation with
                  | None -> Dsm.Json.Null
                  | Some (name, detail, schedule) ->
                      Dsm.Json.Obj
                        [
                          ("invariant", Dsm.Json.String name);
                          ("detail", Dsm.Json.String detail);
                          ( "witness",
                            Dsm.Json.List
                              (List.map
                                 (fun s -> Dsm.Json.String s)
                                 (step_strings schedule)) );
                        ] );
              ])))

  let run ?strategy ~invariant params =
    let init = Dsm.Protocol.initial_system (module P) in
    let sym_spec, orbit_group = resolve_symmetry ~invariant params.symmetry in
    match params.kind with
    | Bdfs ->
        let cfg =
          {
            G.default_config with
            max_depth = params.max_depth;
            time_limit = params.time_limit;
            crash_budget = params.crash_budget;
            domains = params.domains;
            symmetry = sym_spec;
            obs = params.obs;
            trace = params.trace;
          }
        in
        let o = G.run cfg ~invariant init in
        if not params.json then
          Format.printf
            "B-DFS: %d transitions, %d global states, %d system states, \
             depth %d, %d orbit hits, %.3f s, completed=%b@."
            o.stats.transitions o.stats.global_states o.stats.system_states
            o.stats.max_depth_reached o.stats.orbit_hits o.stats.elapsed
            o.completed;
        let violation =
          Option.map
            (fun (v : G.violation) ->
              let trace = maybe_minimize ~params ~invariant v.trace in
              maybe_dot ~params trace;
              (v.violation.Dsm.Invariant.invariant,
               v.violation.Dsm.Invariant.detail, trace))
            o.violation
        in
        if params.json then
          emit_json ~checker:"bdfs" ~violation
            ~stats:
              [
                ("transitions", Dsm.Json.Int o.stats.transitions);
                ("global_states", Dsm.Json.Int o.stats.global_states);
                ("system_states", Dsm.Json.Int o.stats.system_states);
                ("max_depth", Dsm.Json.Int o.stats.max_depth_reached);
                ("domains", Dsm.Json.Int params.domains);
                ( "symmetry",
                  Dsm.Json.String
                    (Dsm.Symmetry.name sym_spec.Dsm.Symmetry.group) );
                ("orbit_hits", Dsm.Json.Int o.stats.orbit_hits);
                ("elapsed_s", Dsm.Json.Float o.stats.elapsed);
                ("completed", Dsm.Json.Bool o.completed);
              ];
        (match violation with
        | Some (_, _, trace) ->
            if not params.json then begin
              Format.printf "VIOLATION: %a@." Dsm.Invariant.pp_violation
                (match o.violation with
                | Some v -> v.violation
                | None -> assert false);
              if params.verbose then pp_violation_trace trace
            end;
            1
        | None ->
            if not params.json then Format.printf "no violation@.";
            0)
    | Lmc_gen | Lmc_opt | Lmc_auto ->
        let strategy =
          match (params.kind, strategy) with
          | Lmc_opt, Some s -> s
          | Lmc_opt, None ->
              if not params.json then
                Format.printf
                  "note: no invariant-specific abstraction for this \
                   protocol; using the general strategy@.";
              L.General
          | Lmc_auto, _ -> L.Automatic
          | _ -> L.General
        in
        let cfg =
          {
            L.default_config with
            max_depth = params.max_depth;
            time_limit = params.time_limit;
            crash_budget = params.crash_budget;
            domains = params.domains;
            verify_domains = params.verify_domains;
            symmetry = orbit_group;
            obs = params.obs;
            trace = params.trace;
          }
        in
        let r = L.run cfg ~strategy ~invariant init in
        if not params.json then
          Format.printf
            "LMC: %d transitions, %d node states, |I+|=%d, %d system \
             states, %d orbit hits, %d preliminary violations (%d \
             rejected), %.3f s, completed=%b@."
            r.transitions r.total_node_states r.net_messages
            r.system_states_created r.orbit_hits r.preliminary_violations
            r.soundness_rejections r.elapsed r.completed;
        let violation =
          Option.map
            (fun (v : L.violation) ->
              let schedule = maybe_minimize ~params ~invariant v.schedule in
              maybe_dot ~params schedule;
              (v.violation.Dsm.Invariant.invariant,
               v.violation.Dsm.Invariant.detail, schedule))
            r.sound_violation
        in
        if params.json then
          emit_json
            ~checker:
              (match params.kind with
              | Lmc_gen -> "lmc-gen"
              | Lmc_opt -> "lmc-opt"
              | Lmc_auto -> "lmc-auto"
              | Bdfs -> assert false)
            ~violation
            ~stats:
              [
                ("transitions", Dsm.Json.Int r.transitions);
                ("node_states", Dsm.Json.Int r.total_node_states);
                ("net_messages", Dsm.Json.Int r.net_messages);
                ("system_states", Dsm.Json.Int r.system_states_created);
                ("preliminary_violations",
                 Dsm.Json.Int r.preliminary_violations);
                ("soundness_rejections", Dsm.Json.Int r.soundness_rejections);
                (* both pools, distinguishable: exploration vs deferred
                   verification *)
                ("domains", Dsm.Json.Int params.domains);
                ("verify_domains", Dsm.Json.Int params.verify_domains);
                ( "symmetry",
                  Dsm.Json.String (Dsm.Symmetry.name orbit_group) );
                ("orbit_hits", Dsm.Json.Int r.orbit_hits);
                ("elapsed_s", Dsm.Json.Float r.elapsed);
                ("completed", Dsm.Json.Bool r.completed);
              ];
        (match violation with
        | Some (_, _, schedule) ->
            if not params.json then begin
              Format.printf "SOUND VIOLATION (%d events): %a@."
                (List.length schedule) Dsm.Invariant.pp_violation
                (match r.sound_violation with
                | Some v -> v.violation
                | None -> assert false);
              if params.verbose then pp_violation_trace schedule
            end;
            1
        | None ->
            if not params.json then Format.printf "no sound violation@.";
            0)

  (* ----- deterministic replay -----

     Two obligations, per the determinism contract (records are emitted
     only from the sequential apply half of every checker):

     1. every [witness] record re-executes to bit-identical per-step
        fingerprints (handled by {!WR});
     2. re-running the recorded exploration — possibly at a different
        --domains count — reproduces the recorded [step] stream byte
        for byte (modulo the wall-clock [ts] field).

     The exploration re-run captures its records in a memory sink and
     diffs them against the file; it is skipped when the original run
     was budget-truncated (a wall-clock limit cuts the stream at a
     non-deterministic point) or when a bounded ring dropped its head. *)
  let replay ?strategy ~invariant ~header ~records ~domains () =
    let wcount, wfail = WR.replay_witnesses records in
    let kind =
      match jstr (jfield "checker" header) with
      | Some "bdfs" -> Some Bdfs
      | Some "lmc-gen" -> Some Lmc_gen
      | Some "lmc-opt" -> Some Lmc_opt
      | Some "lmc-auto" -> Some Lmc_auto
      | _ -> None
    in
    let completed =
      List.fold_left
        (fun acc fields ->
          match ev_of fields with
          | "lmc_end" | "bdfs_end" -> jbool (jfield "completed" fields)
          | _ -> acc)
        None records
    in
    let ring_dropped =
      List.exists
        (fun f ->
          ev_of f = "ring_meta"
          && match jint (jfield "dropped" f) with
             | Some d -> d > 0
             | None -> false)
        records
    in
    let explore_fail =
      match (kind, completed) with
      | _ when ring_dropped ->
          Format.printf
            "exploration: ring buffer dropped early records; witness \
             replay only@.";
          0
      | Some kind, Some true ->
          let recorded =
            List.filter_map
              (fun fields ->
                if ev_of fields = "step" then Some (canonical_record fields)
                else None)
              records
          in
          let domains =
            match domains with
            | Some d -> d
            | None -> Option.value ~default:1 (jint (jfield "domains" header))
          in
          let verify_domains =
            Option.value ~default:1 (jint (jfield "verify_domains" header))
          in
          let max_depth = jint (jfield "max_depth" header) in
          (* Re-run under the recorded symmetry mode: the audit is
             deterministic, so resolving the mode again reproduces the
             group the recording was explored with (reduction changes
             which states are expanded, hence the step stream). *)
          let sym_mode = sym_mode_of_name (jstr (jfield "symmetry" header)) in
          let sym_spec, orbit_group = resolve_symmetry ~invariant sym_mode in
          let sink, captured = Obs.Sink.memory () in
          let trace = Obs.Trace.of_sink sink in
          (* The re-run emits its own framing header so record sequence
             numbers (which provenance links reference) line up with
             the original stream position for position. *)
          ignore
            (Obs.Trace.emit trace ~ev:"run"
               [
                 ("protocol", Dsm.Json.String P.name);
                 ("mode", Dsm.Json.String "replay");
                 ("checker", Dsm.Json.String (checker_name kind));
                 ( "max_depth",
                   match max_depth with
                   | Some d -> Dsm.Json.Int d
                   | None -> Dsm.Json.Null );
                 ("domains", Dsm.Json.Int domains);
                 ("verify_domains", Dsm.Json.Int verify_domains);
                 ("symmetry", Dsm.Json.String (sym_mode_name sym_mode));
               ]);
          let init = Dsm.Protocol.initial_system (module P) in
          (match kind with
          | Bdfs ->
              ignore
                (G.run
                   {
                     G.default_config with
                     max_depth;
                     domains;
                     trace;
                     symmetry = sym_spec;
                   }
                   ~invariant init)
          | _ ->
              let strategy =
                match (kind, strategy) with
                | Lmc_opt, Some s -> s
                | Lmc_auto, _ -> L.Automatic
                | _ -> L.General
              in
              ignore
                (L.run
                   {
                     L.default_config with
                     max_depth;
                     domains;
                     verify_domains;
                     trace;
                     symmetry = orbit_group;
                   }
                   ~strategy ~invariant init));
          Obs.Trace.close trace;
          let replayed =
            List.filter_map
              (fun (e : Obs.Sink.event) ->
                if ev_of e.Obs.Sink.fields = "step" then
                  Some (canonical_record e.Obs.Sink.fields)
                else None)
              (captured ())
          in
          let nr = List.length recorded and np = List.length replayed in
          let rec diff i a b =
            match (a, b) with
            | [], [] -> None
            | x :: a', y :: b' ->
                if String.equal x y then diff (i + 1) a' b'
                else Some (i, Some x, Some y)
            | x :: _, [] -> Some (i, Some x, None)
            | [], y :: _ -> Some (i, None, Some y)
          in
          (match diff 0 recorded replayed with
          | None ->
              Format.printf
                "exploration: re-ran %d transitions at %d domain(s); \
                 record stream bit-identical@."
                np domains;
              0
          | Some (i, a, b) ->
              Format.printf
                "exploration: DIVERGENCE at step record %d (recorded %d \
                 steps, replayed %d)@."
                i nr np;
              let side tag = function
                | Some s -> Format.printf "  %s: %s@." tag s
                | None -> Format.printf "  %s: <absent>@." tag
              in
              side "recorded" a;
              side "replayed" b;
              1)
      | None, _ ->
          Format.printf
            "exploration: no checker kind in the run header; witness \
             replay only@.";
          0
      | Some _, _ ->
          Format.printf
            "exploration: recorded run was budget-truncated; witness \
             replay only@.";
          0
    in
    Format.printf "replay: %d witness(es), %d failure(s)@." wcount wfail;
    if wfail > 0 || explore_fail > 0 then 1 else 0
end

module Hunt_driver
    (Live : Dsm.Protocol.S)
    (Check : Dsm.Protocol.S
               with type state = Live.state
                and type message = Live.message
                and type action = Live.action) =
struct
  module O = Online.Online_mc.Make (Live) (Check)
  module S = Sim.Live_sim.Make (Live)
  module WR = Witness_replayer (Check)
  module SR = Sym_resolver (Check)

  (* Hunt traces segment into wall-clock-budgeted checker restarts, so
     the exploration half is not re-explorable; witnesses, recorded
     with their snapshot starting states, still replay exactly. *)
  let replay_witnesses records =
    let wcount, wfail = WR.replay_witnesses records in
    Format.printf
      "replay: %d witness(es), %d failure(s) (hunt traces replay \
       witnesses only)@."
      wcount wfail;
    if wfail > 0 then 1 else 0

  let run ?strategy ?action_prob ?(faults = Fault.Plan.empty)
      ?(crash_budget = 0) ?restart_budget_ms ?max_retries ?store_dir
      ?(resume = false) ?(symmetry = Sym_off) ~obs ~trace ~invariant ~seed
      ~drop ~interval ~max_live ~budget ~steer ~domains ~verify_domains () =
    (* audited once, up front; every budgeted restart reuses the
       verdict (the protocol does not change between restarts) *)
    let _, orbit_group = SR.resolve ~invariant symmetry in
    let link =
      Net.Lossy_link.create ~drop_prob:drop ~latency_min:0.05 ~latency_max:0.3
        ()
    in
    let supervisor =
      {
        O.default_supervisor with
        O.restart_budget_ms;
        max_retries =
          Option.value max_retries ~default:O.default_supervisor.O.max_retries;
        checksum_snapshots = true;
      }
    in
    let config =
      {
        O.sim = { S.seed; link; timer_min = 2.0; timer_max = 20.0; action_prob; faults };
        check_interval = interval;
        max_live_time = max_live;
        checker =
          {
            O.Checker.default_config with
            time_limit = Some budget;
            max_transitions = Some 100_000;
            crash_budget;
            domains;
            verify_domains;
            symmetry = orbit_group;
            trace;
          };
        action_bounds = [ 1; 2 ];
        steer;
        steer_scope = `Node;
        supervisor;
        store = Option.map (fun dir -> { O.dir; resume }) store_dir;
      }
    in
    let strategy =
      match strategy with Some s -> s | None -> O.Checker.General
    in
    let outcome = O.run ~obs config ~strategy ~invariant in
    (* One greppable line per phase: the soak harness compares the
       cumulative states-explored of kill+resume against cold reruns. *)
    (if store_dir <> None then
       Format.printf "store: states_explored=%d hits=%d resumed_at=%s@."
         outcome.states_explored outcome.store_hits
         (match outcome.resumed_at with
         | Some t -> Printf.sprintf "%.0f" t
         | None -> "cold"));
    (if steer then
       Format.printf
         "steering: %d veto(s) installed; live system %s@."
         (List.length outcome.vetoed)
         (match outcome.live_violation_time with
         | None -> "never violated the invariant"
         | Some t -> Printf.sprintf "violated anyway at t=%.0f s" t));
    match outcome.report with
    | Some report ->
        Format.printf "%a@." O.pp_report report;
        Format.printf "(%d LMC runs, %.2f s total checking time)@."
          outcome.total_checks outcome.total_check_time;
        1
    | None ->
        Format.printf
          "no violation within %.0f simulated seconds (%d LMC runs)@."
          max_live outcome.total_checks;
        0
end

(* ------------------------------------------------------------------ *)
(* The registry                                                        *)
(* ------------------------------------------------------------------ *)

let tree_runner =
  let module T = Protocols.Tree.Make (Protocols.Tree.Paper_config) in
  let module D = Check_driver (T) in
  {
    name = "tree";
    description = "the 5-node forwarding tree of the paper's primer (2)";
    check =
      (fun params ->
        D.run ~invariant:T.received_implies_sent params);
    hunt = None;
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module T) ~name:"tree" ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode:_ ~header ~records ~domains ->
        D.replay ~invariant:T.received_implies_sent ~header ~records ~domains
          ());
  }

let chain_runner =
  let module C = Protocols.Chain.Make (struct
    let length = 8
  end) in
  let module D = Check_driver (C) in
  {
    name = "chain";
    description = "8-node sequential forwarding chain (4.3's worst case)";
    check =
      (fun params ->
        D.run ~invariant:C.prefix_closed params);
    hunt = None;
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module C) ~name:"chain" ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode:_ ~header ~records ~domains ->
        D.replay ~invariant:C.prefix_closed ~header ~records ~domains ());
  }

let ping_runner =
  let module P = Protocols.Ping.Make (struct
    let num_servers = 2
  end) in
  let module D = Check_driver (P) in
  {
    name = "ping";
    description = "client/2-server request-response micro-protocol";
    check =
      (fun params ->
        D.run ~invariant:P.no_excess_pongs params);
    hunt = None;
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module P) ~name:"ping" ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode:_ ~header ~records ~domains ->
        D.replay ~invariant:P.no_excess_pongs ~header ~records ~domains ());
  }

let randtree_runner ~buggy =
  let bug =
    if buggy then Protocols.Randtree.Double_bookkeeping
    else Protocols.Randtree.No_bug
  in
  let module R = Protocols.Randtree.Make (struct
    let num_nodes = 4
    let max_children = 2
    let max_attempts = 1
    let bug = bug
  end) in
  let module D = Check_driver (R) in
  let name = if buggy then "randtree-buggy" else "randtree" in
  {
    name;
    description =
      (if buggy then
         "4-node RandTree overlay with the double-bookkeeping bug"
       else "4-node RandTree overlay (children/siblings disjointness)");
    check =
      (fun params ->
        D.run ~invariant:R.disjointness params);
    hunt = None;
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module R) ~name:name ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode:_ ~header ~records ~domains ->
        D.replay ~invariant:R.disjointness ~header ~records ~domains ());
  }

let paxos_runner ~buggy =
  let bug =
    if buggy then Protocols.Paxos_core.Last_response_wins
    else Protocols.Paxos_core.No_bug
  in
  let module Live = Protocols.Paxos.Make (struct
    let num_nodes = 3
    let proposers = [ 0; 1; 2 ]
    let max_attempts = 2
    let max_index = 16
    let fresh_proposals = true
    let bug = bug
  end) in
  let module Check = Protocols.Paxos.Make (struct
    let num_nodes = 3
    let proposers = [ 0; 1; 2 ]
    let max_attempts = 2
    let max_index = 16
    let fresh_proposals = false
    let bug = bug
  end) in
  let module Bench = Protocols.Paxos.Make (struct
    include Protocols.Paxos.Bench_config

    let bug = bug
  end) in
  let module D = Check_driver (Bench) in
  let module H = Hunt_driver (Live) (Check) in
  let name = if buggy then "paxos-buggy" else "paxos" in
  {
    name;
    description =
      (if buggy then "3-node Paxos with the 5.5 last-response bug"
       else "3-node Paxos, one proposal (the 5.1 benchmark space)");
    check =
      (fun params ->
        D.run
          ~strategy:
            (D.L.Invariant_specific
               { abstract = Bench.abstraction; conflict = Bench.conflicts })
          ~invariant:Bench.safety params);
    hunt =
      Some
        (fun ~obs ~trace ~seed ~drop ~interval ~max_live ~budget ~steer
             ~faults ~crash_budget ~restart_budget_ms ~max_retries ~store_dir
             ~resume ~symmetry ~domains ~verify_domains ->
          H.run
            ~strategy:
              (H.O.Checker.Invariant_specific
                 { abstract = Check.abstraction; conflict = Check.conflicts })
            ~faults ~crash_budget ?restart_budget_ms ?max_retries ?store_dir ~resume ~symmetry ~obs ~trace
            ~invariant:Check.safety ~seed ~drop ~interval ~max_live ~budget
            ~steer ~domains ~verify_domains ());
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module Bench) ~name:name ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode ~header ~records ~domains ->
        (* hunt witnesses were recorded by the hunt's own Check
           instantiation (fresh_proposals off); dispatch there, not to
           the 5.1 benchmark configuration the check path uses *)
        if mode = "hunt" then H.replay_witnesses records
        else
          D.replay
            ~strategy:
              (D.L.Invariant_specific
                 { abstract = Bench.abstraction; conflict = Bench.conflicts })
            ~invariant:Bench.safety ~header ~records ~domains ());
  }

let onepaxos_runner ~buggy =
  let bug =
    if buggy then Protocols.Onepaxos.Postfix_increment
    else Protocols.Onepaxos.No_bug
  in
  let module OP = Protocols.Onepaxos.Make (struct
    let num_nodes = 3
    let max_leader_claims = 2
    let max_attempts = 1
    let max_index = 12
    let max_util_entries = 3
    let max_util_attempts = 2
    let bug = bug
  end) in
  let module D = Check_driver (OP) in
  let module H = Hunt_driver (OP) (OP) in
  let name = if buggy then "onepaxos-buggy" else "onepaxos" in
  {
    name;
    description =
      (if buggy then "3-node 1Paxos with the 5.6 postfix-increment bug"
       else "3-node 1Paxos over an embedded PaxosUtility");
    check =
      (fun params ->
        D.run
          ~strategy:
            (D.L.Invariant_specific
               { abstract = OP.abstraction; conflict = OP.conflicts })
          ~invariant:OP.safety params);
    hunt =
      Some
        (fun ~obs ~trace ~seed ~drop ~interval ~max_live ~budget ~steer
             ~faults ~crash_budget ~restart_budget_ms ~max_retries ~store_dir
             ~resume ~symmetry ~domains ~verify_domains ->
          H.run
            ~strategy:
              (H.O.Checker.Invariant_specific
                 { abstract = OP.abstraction; conflict = OP.conflicts })
            ~action_prob:(fun _ a ->
              match a with
              | Protocols.Onepaxos.Claim_leadership -> 0.1
              | _ -> 1.0)
            ~faults ~crash_budget ?restart_budget_ms ?max_retries ?store_dir ~resume ~symmetry ~obs ~trace
            ~invariant:OP.safety ~seed ~drop ~interval ~max_live ~budget
            ~steer ~domains ~verify_domains ());
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module OP) ~name:name ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode ~header ~records ~domains ->
        if mode = "hunt" then H.replay_witnesses records
        else
          D.replay
            ~strategy:
              (D.L.Invariant_specific
                 { abstract = OP.abstraction; conflict = OP.conflicts })
            ~invariant:OP.safety ~header ~records ~domains ());
  }

let twophase_runner ~buggy =
  let bug =
    if buggy then Protocols.Twophase.Commit_on_majority
    else Protocols.Twophase.No_bug
  in
  let module T = Protocols.Twophase.Make (struct
    let num_nodes = 4
    let no_voters = [ 2 ]
    let bug = bug
  end) in
  let module D = Check_driver (T) in
  let name = if buggy then "2pc-buggy" else "2pc" in
  {
    name;
    description =
      (if buggy then
         "two-phase commit deciding on a majority instead of unanimity"
       else "two-phase commit, 1 coordinator + 3 participants (one no-voter)");
    check =
      (fun params ->
        D.run
          ~strategy:
            (D.L.Invariant_specific
               { abstract = T.abstraction; conflict = T.conflicts })
          ~invariant:T.atomicity params);
    hunt = None;
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module T) ~name:name ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode:_ ~header ~records ~domains ->
        D.replay
          ~strategy:
            (D.L.Invariant_specific
               { abstract = T.abstraction; conflict = T.conflicts })
          ~invariant:T.atomicity ~header ~records ~domains ());
  }

let ring_runner ~buggy =
  let bug =
    if buggy then Protocols.Ring_election.Forward_smaller
    else Protocols.Ring_election.No_bug
  in
  let module R = Protocols.Ring_election.Make (struct
    let num_nodes = 3
    let starters = [ 0; 1 ]
    let bug = bug
  end) in
  let module D = Check_driver (R) in
  let name = if buggy then "ring-buggy" else "ring" in
  {
    name;
    description =
      (if buggy then
         "Chang-Roberts election forwarding losing tokens (two leaders)"
       else "Chang-Roberts leader election on a 3-node ring");
    check =
      (fun params ->
        D.run
          ~strategy:
            (D.L.Invariant_specific
               { abstract = R.abstraction; conflict = R.conflicts })
          ~invariant:R.agreement params);
    hunt = None;
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module R) ~name:name ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode:_ ~header ~records ~domains ->
        D.replay
          ~strategy:
            (D.L.Invariant_specific
               { abstract = R.abstraction; conflict = R.conflicts })
          ~invariant:R.agreement ~header ~records ~domains ());
  }

let mutex_runner ~buggy =
  let bug =
    if buggy then Protocols.Token_mutex.Regenerate_token
    else Protocols.Token_mutex.No_bug
  in
  let module M = Protocols.Token_mutex.Make (struct
    let num_nodes = 3
    let contenders = [ 1; 2 ]
    let max_regenerations = 1
    let bug = bug
  end) in
  let module D = Check_driver (M) in
  let name = if buggy then "mutex-buggy" else "mutex" in
  {
    name;
    description =
      (if buggy then
         "token-ring mutual exclusion regenerating an unlost token"
       else "token-ring mutual exclusion, 3 nodes, 2 contenders");
    check =
      (fun params ->
        D.run
          ~strategy:
            (D.L.Invariant_specific
               { abstract = M.abstraction; conflict = M.conflicts })
          ~invariant:M.mutual_exclusion params);
    hunt = None;
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module M) ~name:name ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode:_ ~header ~records ~domains ->
        D.replay
          ~strategy:
            (D.L.Invariant_specific
               { abstract = M.abstraction; conflict = M.conflicts })
          ~invariant:M.mutual_exclusion ~header ~records ~domains ());
  }

let abp_runner ~buggy =
  let bug =
    if buggy then Protocols.Alternating_bit.Ignore_bit
    else Protocols.Alternating_bit.No_bug
  in
  let module A = Protocols.Alternating_bit.Make (struct
    let data = [ 10; 20 ]
    let max_retransmits = 1
    let bug = bug
  end) in
  let module FA = Protocols.Fifo.Make (A) in
  let module D = Check_driver (FA) in
  let name = if buggy then "abp-buggy" else "abp" in
  {
    name;
    description =
      (if buggy then
         "alternating-bit over FIFO channels, receiver ignoring the bit"
       else "alternating-bit protocol over FIFO (TCP-like) channels");
    check =
      (fun params ->
        D.run
          ~invariant:(FA.lift_invariant A.prefix_delivery)
          params);
    hunt = None;
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module FA) ~name:name ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode:_ ~header ~records ~domains ->
        D.replay
          ~invariant:(FA.lift_invariant A.prefix_delivery)
          ~header ~records ~domains ());
  }

let pb_runner ~buggy =
  let bug =
    if buggy then Protocols.Pb_store.Ack_before_replication
    else Protocols.Pb_store.No_bug
  in
  let module P = Protocols.Pb_store.Make (struct
    let key = 7
    let value = 42
    let bug = bug
  end) in
  let module D = Check_driver (P) in
  let name = if buggy then "pb-store-buggy" else "pb-store" in
  {
    name;
    description =
      (if buggy then
         "primary-backup store acknowledging before replication"
       else "primary-backup store with fail-over reads");
    check =
      (fun params -> D.run ~invariant:P.read_your_writes params);
    hunt = None;
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module P) ~name:name ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode:_ ~header ~records ~domains ->
        D.replay ~invariant:P.read_your_writes ~header ~records ~domains ());
  }

(* The fault-injection fixture: correct under every message schedule,
   broken only across a crash-recovery, so the hunt needs [--faults]
   (live crash events) and [--crash-budget] (checker crash events) to
   reach it. *)
let pb_crash_runner =
  let module P = Protocols.Pb_store.Make (struct
    let key = 7
    let value = 42
    let bug = Protocols.Pb_store.Lose_acked_writes_on_recovery
  end) in
  let module D = Check_driver (P) in
  let module H = Hunt_driver (P) (P) in
  let name = "pb-store-crash" in
  {
    name;
    description =
      "primary-backup store losing acked writes on crash-recovery \
       (needs --crash-budget/--faults)";
    check = (fun params -> D.run ~invariant:P.read_your_writes params);
    hunt =
      Some
        (fun ~obs ~trace ~seed ~drop ~interval ~max_live ~budget ~steer
             ~faults ~crash_budget ~restart_budget_ms ~max_retries ~store_dir
             ~resume ~symmetry ~domains ~verify_domains ->
          H.run ~faults ~crash_budget ?restart_budget_ms ?max_retries ?store_dir ~resume ~symmetry ~obs
            ~trace ~invariant:P.read_your_writes ~seed ~drop ~interval
            ~max_live ~budget ~steer ~domains ~verify_domains ());
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module P) ~name ~max_depth ~max_transitions ~sym ());
    replay =
      (fun ~mode ~header ~records ~domains ->
        if mode = "hunt" then H.replay_witnesses records
        else
          D.replay ~invariant:P.read_your_writes ~header ~records ~domains ());
  }

(* The SWIM instances share one constructor: the clean protocol plus
   the two planted-bug variants.  Both bugs hide behind the fault
   plan: [No_suspicion] is harmless until a reorder:/dup: storm ages
   live probes past the checker's widening bounds, and [Ack_race]
   needs a crash-with-recovery of the relay (live crash clauses plus
   --crash-budget for the checker's own crash exploration). *)
let swim_runner bug =
  let module P = Protocols.Swim.Make (struct
    let num_servers = 4
    let bug = bug
  end) in
  let module D = Check_driver (P) in
  let module H = Hunt_driver (P) (P) in
  let name, description =
    match bug with
    | Protocols.Swim.No_bug ->
        ("swim", "4-node SWIM gossip membership (ping-req/suspicion/refutation)")
    | Protocols.Swim.No_suspicion ->
        ( "swim-nosuspect",
          "SWIM declaring death on timeout alone (needs reorder:/dup: \
           faults or link loss; control runs want --drop 0)" )
    | Protocols.Swim.Ack_race ->
        ( "swim-ackrace",
          "SWIM relay losing ack ownership across a crash (needs relay \
           crash:+--crash-budget)" )
  in
  {
    name;
    description;
    check = (fun params -> D.run ~invariant:P.membership_safety params);
    hunt =
      Some
        (fun ~obs ~trace ~seed ~drop ~interval ~max_live ~budget ~steer
             ~faults ~crash_budget ~restart_budget_ms ~max_retries ~store_dir
             ~resume ~symmetry ~domains ~verify_domains ->
          H.run ~faults ~crash_budget ?restart_budget_ms ?max_retries
            ?store_dir ~resume ~symmetry ~obs ~trace
            ~invariant:P.membership_safety ~seed ~drop ~interval ~max_live
            ~budget ~steer ~domains ~verify_domains ());
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module P) ~name ~max_depth ~max_transitions ~sym ());
    replay =
      (fun ~mode ~header ~records ~domains ->
        if mode = "hunt" then H.replay_witnesses records
        else
          D.replay ~invariant:P.membership_safety ~header ~records ~domains ());
  }

(* The genuinely symmetric fixture as a checkable instance: a harmless
   invariant (pairwise progress gap, never violated, slot-symmetric)
   gives `check --symmetry auto` something to orbit-audit, and the
   protocol's full S_3 commutation makes it the B-DFS reduction demo —
   canonicalization collapses permuted interleavings close to n!. *)
let sym_flood_runner =
  let module F = Protocols.Lint_fixtures.Sym_flood in
  let module D = Check_driver (F) in
  let invariant =
    Dsm.Invariant.for_all_pairs ~name:"bounded-progress-gap"
      (fun _ a _ b ->
        if abs (a - b) > 100 then
          Some (Printf.sprintf "progress gap %d" (abs (a - b)))
        else None)
  in
  {
    name = "sym-flood";
    description = "S3-symmetric ping-pong flood (symmetry-reduction demo)";
    check = (fun params -> D.run ~invariant params);
    hunt = None;
    lint =
      (fun ~max_depth ~max_transitions ~sym ->
        lint_protocol (module F) ~name:"sym-flood" ~max_depth
          ~max_transitions ~sym ());
    replay =
      (fun ~mode:_ ~header ~records ~domains ->
        D.replay ~invariant ~header ~records ~domains ());
  }

let runners =
  [
    tree_runner;
    chain_runner;
    ping_runner;
    randtree_runner ~buggy:false;
    randtree_runner ~buggy:true;
    paxos_runner ~buggy:false;
    paxos_runner ~buggy:true;
    onepaxos_runner ~buggy:false;
    onepaxos_runner ~buggy:true;
    twophase_runner ~buggy:false;
    twophase_runner ~buggy:true;
    ring_runner ~buggy:false;
    ring_runner ~buggy:true;
    mutex_runner ~buggy:false;
    mutex_runner ~buggy:true;
    abp_runner ~buggy:false;
    abp_runner ~buggy:true;
    pb_runner ~buggy:false;
    pb_runner ~buggy:true;
    pb_crash_runner;
    swim_runner Protocols.Swim.No_bug;
    swim_runner Protocols.Swim.No_suspicion;
    swim_runner Protocols.Swim.Ack_race;
    sym_flood_runner;
  ]

let find_runner name =
  match List.find_opt (fun r -> r.name = name) runners with
  | Some r -> Ok r
  | None ->
      Error
        (Printf.sprintf "unknown protocol %S; try `lmc_cli list'" name)

(* The planted-defect fixtures are lint-only targets: they exist so
   the suite (and `make lint') can prove each sanitizer class fires,
   and they have no invariant worth model-checking.  The fourth
   component is the fixture's symmetry *claim*, audited whenever the
   lint runs with --symmetry auto (the default) — how the sym-broken
   fixture's defect is reached. *)
let lint_fixtures =
  [
    ( "fixture-nondet",
      "planted defect: hidden counter leaks into a reply payload",
      (module Protocols.Lint_fixtures.Nondet : Dsm.Protocol.S),
      None );
    ( "fixture-noncanon",
      "planted defect: equal states with divergent Marshal sharing",
      (module Protocols.Lint_fixtures.Noncanon : Dsm.Protocol.S),
      None );
    ( "fixture-dead",
      "planted defect: a broadcast message nobody reacts to",
      (module Protocols.Lint_fixtures.Dead_letter : Dsm.Protocol.S),
      None );
    ( "fixture-flaky-recovery",
      "planted defect: an epoch counter leaks into on_recover",
      (module Protocols.Lint_fixtures.Flaky_recovery : Dsm.Protocol.S),
      None );
    ( "fixture-sym-broken",
      "planted defect: claims full symmetry but node 0 counts pings double",
      (module Protocols.Lint_fixtures.Sym_broken : Dsm.Protocol.S),
      Some (Dsm.Symmetry.full 3) );
    ( "fixture-sym-flood",
      "positive control: genuinely S3-symmetric ping-pong flood",
      (module Protocols.Lint_fixtures.Sym_flood : Dsm.Protocol.S),
      Some (Dsm.Symmetry.full 3) );
  ]

let lint_targets =
  List.map (fun r -> (r.name, r.lint)) runners
  @ List.map
      (fun (name, _, m, claim) ->
        ( name,
          fun ~max_depth ~max_transitions ~sym ->
            lint_protocol m ~name ~max_depth ~max_transitions ~sym ?claim () ))
      lint_fixtures

(* ------------------------------------------------------------------ *)
(* Offline run report                                                  *)
(* ------------------------------------------------------------------ *)

(* [lmc report] is protocol-agnostic: it works off the rendered labels
   and fingerprint strings in the trace, never off marshalled protocol
   values, so it can digest a recording from any (possibly future)
   protocol binary. *)
module Report = struct
  type rstep = {
    r_node : int;
    r_kind : string;
    r_label : string;
    r_depth : int;
    r_produced : string list;
  }

  let parse_steps records =
    List.filter_map
      (fun f ->
        if ev_of f <> "step" then None
        else
          Some
            {
              r_node = Option.value ~default:(-1) (jint (jfield "node" f));
              r_kind = Option.value ~default:"?" (jstr (jfield "kind" f));
              r_label = Option.value ~default:"?" (jstr (jfield "label" f));
              r_depth = Option.value ~default:0 (jint (jfield "depth" f));
              r_produced =
                (match jfield "produced" f with
                | Some (Dsm.Json.List l) ->
                    List.filter_map
                      (function Dsm.Json.String s -> Some s | _ -> None)
                      l
                | _ -> []);
            })
      records

  (* "Prepare(1,2)" and "Prepare(2,0)" are the same handler; group by
     the constructor-ish prefix before the first '(' or space. *)
  let family label =
    match String.index_opt label '(' with
    | Some i -> String.sub label 0 i
    | None -> (
        match String.index_opt label ' ' with
        | Some i -> String.sub label 0 i
        | None -> label)

  let bar ?(width = 40) frac =
    let n = int_of_float ((frac *. float_of_int width) +. 0.5) in
    String.make (max 0 (min width n)) '#'

  let pct part total =
    if total <= 0 then 0. else 100. *. float_of_int part /. float_of_int total

  let clip ?(max_len = 46) s =
    if String.length s <= max_len then s
    else String.sub s 0 (max_len - 1) ^ "~"

  let section name = Format.printf "@.== %s ==@." name

  let render_header records =
    section "run";
    List.iter
      (fun f ->
        match ev_of f with
        | "run" ->
            Format.printf
              "protocol %s, mode %s, checker %s, %d domain(s), %d \
               verify domain(s)@."
              (Option.value ~default:"?" (jstr (jfield "protocol" f)))
              (Option.value ~default:"?" (jstr (jfield "mode" f)))
              (Option.value ~default:"?" (jstr (jfield "checker" f)))
              (Option.value ~default:1 (jint (jfield "domains" f)))
              (Option.value ~default:1 (jint (jfield "verify_domains" f)))
        | "ring_meta" ->
            Format.printf
              "ring recording: %d record(s) dropped at the head \
               (capacity %d)@."
              (Option.value ~default:0 (jint (jfield "dropped" f)))
              (Option.value ~default:0 (jint (jfield "capacity" f)))
        | _ -> ())
      records;
    let count ev = List.length (List.filter (fun f -> ev_of f = ev) records) in
    let restarts = count "restart" in
    if restarts > 0 then
      Format.printf "%d checker restart(s) over %d live event(s)@." restarts
        (count "live")

  let render_coverage steps =
    section "handler coverage";
    let tbl : (string * string, int ref) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun s ->
        let key = (family s.r_label, s.r_kind) in
        match Hashtbl.find_opt tbl key with
        | Some r -> incr r
        | None -> Hashtbl.add tbl key (ref 1))
      steps;
    let total = List.length steps in
    let rows =
      Hashtbl.fold (fun (fam, kind) r acc -> (fam, kind, !r) :: acc) tbl []
      |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    in
    if rows = [] then Format.printf "no step records@."
    else begin
      Format.printf "%-24s %-8s %10s %6s@." "HANDLER" "KIND" "STEPS" "%";
      List.iter
        (fun (fam, kind, n) ->
          Format.printf "%-24s %-8s %10d %5.1f%% %s@." (clip ~max_len:24 fam)
            kind n (pct n total)
            (bar ~width:24 (float_of_int n /. float_of_int total)))
        rows;
      let nodes = List.sort_uniq compare (List.map (fun s -> s.r_node) steps) in
      Format.printf "%d handler famil%s exercised across node(s) %s@."
        (List.length rows)
        (if List.length rows = 1 then "y" else "ies")
        (String.concat ", " (List.map string_of_int nodes))
    end

  let render_depth steps =
    section "transitions per depth";
    match steps with
    | [] -> Format.printf "no step records@."
    | _ ->
        let maxd = List.fold_left (fun m s -> max m s.r_depth) 0 steps in
        let counts = Array.make (maxd + 1) 0 in
        List.iter (fun s -> counts.(s.r_depth) <- counts.(s.r_depth) + 1) steps;
        let peak = Array.fold_left max 1 counts in
        Array.iteri
          (fun d n ->
            Format.printf "depth %3d %8d %s@." d n
              (bar ~width:40 (float_of_int n /. float_of_int peak)))
          counts

  (* The shape the paper plots in Fig. 10: |I+| grows monotonically as
     exploration injects fresh messages; sampled at ~20 even points. *)
  let render_iplus steps =
    section "|I+| growth";
    let seen : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
    let sizes =
      List.map
        (fun s ->
          List.iter
            (fun fp ->
              if not (Hashtbl.mem seen fp) then Hashtbl.add seen fp ())
            s.r_produced;
          Hashtbl.length seen)
        steps
      |> Array.of_list
    in
    let n = Array.length sizes in
    if n = 0 then Format.printf "no step records@."
    else begin
      let final = sizes.(n - 1) in
      let samples = min 20 n in
      for i = 1 to samples do
        let idx = (i * n / samples) - 1 in
        Format.printf "step %8d |I+| %7d %s@." (idx + 1) sizes.(idx)
          (bar ~width:40
             (if final = 0 then 0.
              else float_of_int sizes.(idx) /. float_of_int final))
      done;
      Format.printf "%d distinct message(s) injected over %d transition(s)@."
        final n
    end

  let render_phases records =
    section "time attribution";
    let sum name =
      List.fold_left
        (fun acc f ->
          if ev_of f = "phases" then
            acc + Option.value ~default:0 (jint (jfield name f))
          else acc)
        0 records
    in
    let elapsed = sum "elapsed_us" in
    if elapsed = 0 then
      Format.printf "no phase records (was the run recorded to a ring \
                     that dropped them?)@."
    else begin
      let handler = sum "handler_us" in
      let fingerprint = sum "fingerprint_us" in
      let invariant = sum "invariant_us" in
      let soundness = sum "soundness_us" in
      let system_state = sum "system_state_us" in
      (* system_state includes the invariant checks it runs; the
         remainder of the wall clock is exploration bookkeeping and
         (for --domains > 1) pool overhead.  Handler/fingerprint time
         is summed across workers, so it can exceed the wall-clock
         share when parallel. *)
      let explore = max 0 (elapsed - system_state - soundness) in
      let overhead = max 0 (explore - handler - fingerprint) in
      let row name us =
        Format.printf "%-28s %10.3f ms %5.1f%% %s@." name
          (float_of_int us /. 1000.)
          (pct us elapsed)
          (bar ~width:24 (float_of_int us /. float_of_int elapsed))
      in
      row "handler execution" handler;
      row "fingerprinting" fingerprint;
      row "exploration overhead" overhead;
      row "system-state creation" (max 0 (system_state - invariant));
      row "invariant checks" invariant;
      row "soundness verification" soundness;
      Format.printf "%-28s %10.3f ms@." "total wall clock"
        (float_of_int elapsed /. 1000.)
    end

  let render_soundness records =
    section "soundness search";
    let prelim = ref 0
    and rejects_invalid = ref 0
    and rejects_budget = ref 0
    and checks_valid = ref 0
    and checks_invalid = ref 0
    and checks_budget = ref 0
    and witnesses = ref 0 in
    List.iter
      (fun f ->
        match ev_of f with
        | "prelim" -> incr prelim
        | "witness" -> incr witnesses
        | "reject" -> (
            match jstr (jfield "why" f) with
            | Some "budget_exhausted" -> incr rejects_budget
            | _ -> incr rejects_invalid)
        | "soundness" -> (
            match jstr (jfield "verdict" f) with
            | Some "valid" -> incr checks_valid
            | Some "budget_exhausted" -> incr checks_budget
            | _ -> incr checks_invalid)
        | _ -> ())
      records;
    Format.printf
      "%d preliminary violation(s): %d confirmed sound, %d rejected as \
       unsound, %d beyond the interleaving budget@."
      !prelim !witnesses !rejects_invalid !rejects_budget;
    if !checks_valid + !checks_invalid + !checks_budget > 0 then
      Format.printf
        "interleaving searches: %d valid, %d invalid, %d budget-capped@."
        !checks_valid !checks_invalid !checks_budget

  (* Pool stats ride in the metrics stream (satellite of PR 2), keyed
     par.tasks.d<i> / par.steals.d<i> / par.qdepth.d<i>. *)
  let render_pool metrics_path =
    match metrics_path with
    | None -> ()
    | Some path ->
        section "exploration pool";
        let metrics = ref [] in
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            try
              while true do
                match Dsm.Json.of_string (input_line ic) with
                | Ok (Dsm.Json.Obj fields) -> (
                    match
                      (jstr (jfield "metric" fields), jfield "value" fields)
                    with
                    | Some name, Some (Dsm.Json.Int v) ->
                        metrics := (name, float_of_int v) :: !metrics
                    | Some name, Some (Dsm.Json.Float v) ->
                        metrics := (name, v) :: !metrics
                    | _ -> ())
                | Ok _ | Error _ -> ()
              done
            with End_of_file -> ());
        let metrics = !metrics in
        let per_domain prefix =
          List.filter_map
            (fun (name, v) ->
              let plen = String.length prefix in
              if
                String.length name > plen
                && String.sub name 0 plen = prefix
              then
                int_of_string_opt
                  (String.sub name plen (String.length name - plen))
                |> Option.map (fun d -> (d, v))
              else None)
            metrics
          |> List.sort compare
        in
        let tasks = per_domain "par.tasks.d" in
        let steals = per_domain "par.steals.d" in
        if tasks = [] then
          Format.printf
            "no par.* metrics in %s (sequential run, or recorded without \
             --metrics-out)@."
            path
        else begin
          let total = List.fold_left (fun a (_, v) -> a +. v) 0. tasks in
          Format.printf "%-8s %12s %12s %12s@." "DOMAIN" "TASKS" "STEALS"
            "SHARE";
          List.iter
            (fun (d, v) ->
              let stolen =
                Option.value ~default:0. (List.assoc_opt d steals)
              in
              Format.printf "d%-7d %12.0f %12.0f %11.1f%%@." d v stolen
                (if total = 0. then 0. else 100. *. v /. total))
            tasks;
          (match List.assoc_opt "par.batches" metrics with
          | Some b -> Format.printf "%.0f parallel batch(es) submitted@." b
          | None -> ())
        end

  (* Fig. 4-style message sequence chart of a recorded witness: one
     lifeline per node, deliveries as arrows, internal actions as
     starred events on their lifeline. *)
  let render_witness_chart idx fields =
    let wsteps =
      match jfield "wsteps" fields with
      | Some (Dsm.Json.List l) ->
          List.filter_map
            (function
              | Dsm.Json.Obj f ->
                  Some
                    ( Option.value ~default:"?" (jstr (jfield "kind" f)),
                      Option.value ~default:0 (jint (jfield "node" f)),
                      Option.value ~default:(-1) (jint (jfield "src" f)),
                      Option.value ~default:"?" (jstr (jfield "label" f)) )
              | _ -> None)
            l
      | _ -> []
    in
    let nodes =
      match jfield "init" fields with
      | Some (Dsm.Json.List l) -> max 1 (List.length l)
      | _ ->
          1
          + List.fold_left
              (fun m (_, node, src, _) -> max m (max node src))
              0 wsteps
    in
    Format.printf "@.-- witness #%d: %s (%s) --@." idx
      (Option.value ~default:"?" (jstr (jfield "invariant" fields)))
      (clip ~max_len:60
         (Option.value ~default:"" (jstr (jfield "detail" fields))));
    let colw = 12 in
    let width = nodes * colw in
    let col n = (n * colw) + (colw / 2) in
    let line () =
      let b = Bytes.make width ' ' in
      for n = 0 to nodes - 1 do
        Bytes.set b (col n) '|'
      done;
      b
    in
    let hdr = Bytes.make width ' ' in
    for n = 0 to nodes - 1 do
      let name = Printf.sprintf "n%d" n in
      String.iteri
        (fun i c ->
          let p = col n - (String.length name / 2) + i in
          if p >= 0 && p < width then Bytes.set hdr p c)
        name
    done;
    Format.printf "%s@." (Bytes.to_string hdr);
    List.iter
      (fun (kind, node, src, label) ->
        let b = line () in
        let ok n = n >= 0 && n < nodes in
        (match kind with
        | "deliver" when ok src && ok node && src <> node ->
            let lo = min (col src) (col node)
            and hi = max (col src) (col node) in
            for i = lo + 1 to hi - 1 do
              Bytes.set b i '-'
            done;
            if node > src then Bytes.set b (hi - 1) '>'
            else Bytes.set b (lo + 1) '<'
        | "deliver" when ok node -> Bytes.set b (col node) 'o'
        | _ -> if ok node then Bytes.set b (col node) '*');
        Format.printf "%s  %s@." (Bytes.to_string b) (clip label))
      wsteps;
    Format.printf "(%d events; * internal action, o self-delivery)@."
      (List.length wsteps)

  (* The sampled-profile sections (profile.v1 records appended to the
     record file by --profile).  Self time per frame is the leaf-frame
     attribution: on the Fig. 10 sweep it names combination checking
     as the dominant phase, the paper's headline cost finding. *)
  let render_profile records =
    let stacks =
      List.filter_map
        (fun f ->
          if ev_of f <> "stack" then None
          else
            let frames =
              match jfield "stack" f with
              | Some (Dsm.Json.List l) ->
                  List.filter_map
                    (function Dsm.Json.String s -> Some s | _ -> None)
                    l
              | _ -> []
            in
            Some
              ( frames,
                Option.value ~default:0 (jint (jfield "us" f)),
                Option.value ~default:0 (jint (jfield "samples" f)) ))
        records
    in
    section "sampled profile";
    (List.iter
       (fun f ->
         if ev_of f = "prof_run" then
           Format.printf
             "%.3f ms attributed across %d stack(s), 1 sample per %d \
              transition tick(s)@."
             (float_of_int
                (Option.value ~default:0 (jint (jfield "clock_us" f)))
             /. 1000.)
             (Option.value ~default:0 (jint (jfield "stacks" f)))
             (Option.value ~default:1 (jint (jfield "sample_every" f))))
       records;
     let total = List.fold_left (fun a (_, us, _) -> a + us) 0 stacks in
     if total = 0 then
       Format.printf "no samples (was the run long enough to tick?)@."
     else begin
       (* Self time: the interval a sample lands in belongs to the
          innermost frame live at that moment. *)
       let self : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
       List.iter
         (fun (frames, us, _) ->
           let leaf =
             match List.rev frames with leaf :: _ -> leaf | [] -> "(idle)"
           in
           match Hashtbl.find_opt self leaf with
           | Some r -> r := !r + us
           | None -> Hashtbl.add self leaf (ref us))
         stacks;
       let rows =
         Hashtbl.fold (fun name r acc -> (name, !r) :: acc) self []
         |> List.sort (fun (_, a) (_, b) -> compare b a)
       in
       Format.printf "%-28s %12s %6s@." "FRAME (self time)" "MS" "%";
       List.iter
         (fun (name, us) ->
           Format.printf "%-28s %12.3f %5.1f%% %s@." (clip ~max_len:28 name)
             (float_of_int us /. 1000.)
             (pct us total)
             (bar ~width:24 (float_of_int us /. float_of_int total)))
         rows;
       let top = 12 in
       Format.printf "@.%-52s %12s %6s@." "HOT STACK" "MS" "%";
       List.iteri
         (fun i (frames, us, _) ->
           if i < top then
             Format.printf "%-52s %12.3f %5.1f%%@."
               (clip ~max_len:52 (String.concat ";" frames))
               (float_of_int us /. 1000.)
               (pct us total))
         (List.sort (fun (_, a, _) (_, b, _) -> compare b a) stacks);
       if List.length stacks > top then
         Format.printf "(%d more stack(s))@." (List.length stacks - top)
     end);
    0

  let render ~records ~metrics_path =
    let steps = parse_steps records in
    render_header records;
    render_coverage steps;
    render_depth steps;
    render_iplus steps;
    render_phases records;
    render_soundness records;
    render_pool metrics_path;
    List.iteri render_witness_chart
      (List.filter (fun f -> ev_of f = "witness") records);
    0
end

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let doc = "List the bundled protocol instances." in
  let run () =
    Format.printf "%-16s %s@." "NAME" "DESCRIPTION";
    List.iter (fun r -> Format.printf "%-16s %s@." r.name r.description) runners;
    Format.printf "@.lint-only targets (`lmc_cli lint'):@.";
    List.iter
      (fun (name, descr, _, _) -> Format.printf "%-16s %s@." name descr)
      lint_fixtures;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let protocol_arg =
  let doc = "Protocol instance to check (see `list')." in
  Arg.(required & opt (some string) None & info [ "p"; "protocol" ] ~doc)

let checker_arg =
  let doc = "Checker: bdfs, lmc-gen, lmc-opt or lmc-auto." in
  let parse = function
    | "bdfs" -> Ok Bdfs
    | "lmc-gen" -> Ok Lmc_gen
    | "lmc-opt" -> Ok Lmc_opt
    | "lmc-auto" -> Ok Lmc_auto
    | s -> Error (`Msg (Printf.sprintf "unknown checker %S" s))
  in
  let print ppf k =
    Format.pp_print_string ppf
      (match k with
      | Bdfs -> "bdfs"
      | Lmc_gen -> "lmc-gen"
      | Lmc_opt -> "lmc-opt"
      | Lmc_auto -> "lmc-auto")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Lmc_opt
    & info [ "c"; "checker" ] ~doc)

let depth_arg =
  let doc = "Depth bound (events)." in
  Arg.(value & opt (some int) None & info [ "d"; "max-depth" ] ~doc)

let time_arg =
  let doc = "Wall-clock budget in seconds." in
  Arg.(value & opt (some float) (Some 60.0) & info [ "t"; "time-limit" ] ~doc)

let verbose_arg =
  let doc = "Print witness schedules." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let minimize_arg =
  let doc = "Shrink witness schedules with delta debugging before printing." in
  Arg.(value & flag & info [ "m"; "minimize" ] ~doc)

let dot_arg =
  let doc = "Write the witness as a Graphviz sequence chart to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~doc ~docv:"FILE")

let json_arg =
  let doc = "Emit a single JSON object on stdout instead of prose." in
  Arg.(value & flag & info [ "json" ] ~doc)

let metrics_out_arg =
  let doc =
    "Dump the metrics registry (counters, histograms) as JSONL to $(docv) \
     when the run finishes."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")

let trace_out_arg =
  let doc =
    "Stream structured events (new node states, preliminary and sound \
     violations, rounds, progress) as JSONL to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")

let progress_arg =
  let doc =
    "Print a progress heartbeat to stderr roughly every $(docv) seconds."
  in
  Arg.(value & opt (some float) None & info [ "progress" ] ~doc ~docv:"SECS")

let record_arg =
  let doc =
    "Flight recorder: append every explored transition, soundness \
     verdict and violation witness as trace.v1 JSONL to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "record" ] ~doc ~docv:"FILE")

let record_ring_arg =
  let doc =
    "Bound the recorder to the last $(docv) records (an in-memory ring \
     dumped at exit) instead of streaming the whole run to the file."
  in
  Arg.(value & opt (some int) None & info [ "record-ring" ] ~doc ~docv:"N")

let serve_arg =
  let doc =
    "Serve live telemetry over HTTP on 127.0.0.1:$(docv) while the run \
     is in flight: /metrics (Prometheus text exposition of the live \
     registry) and /healthz (supervisor tier, restart budget, snapshot \
     age, GC/RSS).  Port 0 picks a free port (printed to stderr)."
  in
  Arg.(value & opt (some int) None & info [ "serve" ] ~doc ~docv:"PORT")

let serve_linger_arg =
  let doc =
    "Keep the --serve endpoint up for $(docv) seconds after the run \
     finishes (and after the final --metrics-out dump), so a scraper \
     can collect the end-of-run values."
  in
  Arg.(value & opt float 0. & info [ "serve-linger" ] ~doc ~docv:"SECS")

let profile_arg =
  let doc =
    "Enable the sampling profiler and append its profile.v1 records to \
     the --record file; read them back with `lmc report --profile'."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let flamegraph_arg =
  let doc =
    "Write the profile as collapsed-stack text ('frame;frame us' per \
     line, flamegraph.pl / inferno / speedscope input) to $(docv).  \
     Implies profiling."
  in
  Arg.(value & opt (some string) None & info [ "flamegraph" ] ~doc ~docv:"FILE")

let speedscope_arg =
  let doc =
    "Write the profile as speedscope JSON to $(docv).  Implies \
     profiling."
  in
  Arg.(value & opt (some string) None & info [ "speedscope" ] ~doc ~docv:"FILE")

let timeseries_arg =
  let doc =
    "Sample every counter and gauge (plus GC and RSS) from the \
     progress-heartbeat tick gate into a bounded ring, dumped as \
     timeseries.v1 JSONL to $(docv) when the run finishes."
  in
  Arg.(value & opt (some string) None & info [ "timeseries" ] ~doc ~docv:"FILE")

let timeseries_interval_arg =
  let doc = "Seconds between --timeseries samples." in
  Arg.(
    value & opt float 1.0 & info [ "timeseries-interval" ] ~doc ~docv:"SECS")

let telemetry_term =
  let mk tel_serve tel_linger tel_profile tel_flamegraph tel_speedscope
      tel_timeseries tel_ts_interval =
    {
      tel_serve;
      tel_linger;
      tel_profile;
      tel_flamegraph;
      tel_speedscope;
      tel_timeseries;
      tel_ts_interval;
    }
  in
  Term.(
    const mk $ serve_arg $ serve_linger_arg $ profile_arg $ flamegraph_arg
    $ speedscope_arg $ timeseries_arg $ timeseries_interval_arg)

(* Like make_scope: unwritable paths must fail before the run starts. *)
let make_trace ~record ~record_ring =
  match record with
  | None ->
      if record_ring <> None then begin
        Printf.eprintf "lmc_cli: --record-ring requires --record\n%!";
        exit 2
      end;
      (Obs.Trace.null, fun () -> ())
  | Some path ->
      let t =
        try
          match record_ring with
          | Some cap when cap < 1 ->
              Printf.eprintf "lmc_cli: --record-ring must be >= 1\n%!";
              exit 2
          | Some cap -> Obs.Trace.ring ~capacity:cap path
          | None -> Obs.Trace.to_file path
        with Sys_error msg ->
          Printf.eprintf "lmc_cli: %s\n%!" msg;
          exit 2
      in
      (t, fun () -> Obs.Trace.close t)

(* The CLI frames each recording with [run]/[end] records; the header
   carries what `lmc replay' needs to re-run the exploration. *)
let emit_run_header trace ~protocol ~mode ~checker ~max_depth ~domains
    ~verify_domains ~symmetry =
  if Obs.Trace.enabled trace then
    ignore
      (Obs.Trace.emit trace ~ev:"run"
         [
           ("protocol", Dsm.Json.String protocol);
           ("mode", Dsm.Json.String mode);
           ("checker", Dsm.Json.String checker);
           ( "max_depth",
             match max_depth with
             | Some d -> Dsm.Json.Int d
             | None -> Dsm.Json.Null );
           ("domains", Dsm.Json.Int domains);
           ("verify_domains", Dsm.Json.Int verify_domains);
           ("symmetry", Dsm.Json.String (sym_mode_name symmetry));
         ])

let emit_run_end trace code =
  if Obs.Trace.enabled trace then
    ignore (Obs.Trace.emit trace ~ev:"end" [ ("exit", Dsm.Json.Int code) ])

(* Positive domain counts; anything below 1 is a usage error, reported
   through cmdliner rather than as a runtime invalid_arg. *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%d is not a valid count; must be >= 1" n))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let domains_arg =
  let doc =
    "Worker domains for state exploration.  1 (the default) keeps the \
     sequential path; N > 1 fans the pure half of each transition batch \
     across a work-stealing pool with verdicts identical to a sequential \
     run."
  in
  Arg.(value & opt pos_int 1 & info [ "domains" ] ~doc ~docv:"N")

let verify_domains_arg =
  let doc =
    "Worker domains for deferred soundness verification (LMC checkers \
     only; independent of --domains)."
  in
  Arg.(value & opt pos_int 1 & info [ "verify-domains" ] ~doc ~docv:"N")

let crash_budget_arg =
  let doc =
    "Crash-recovery events the checker explores per node path (0 \
     disables the crash pass entirely)."
  in
  Arg.(value & opt int 0 & info [ "crash-budget" ] ~doc ~docv:"N")

(* --symmetry MODE.  Named groups are validated here for spelling; the
   degree-dependent group is built per protocol at resolution time. *)
let sym_mode_conv =
  let parse = function
    | "auto" -> Ok Sym_auto
    | "off" | "id" | "identity" -> Ok Sym_off
    | s -> (
        match Dsm.Symmetry.of_name s ~degree:2 with
        | Some _ -> Ok (Sym_group s)
        | None ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown symmetry mode %S; use auto, off, full or rot" s)))
  in
  let print ppf = function
    | Sym_off -> Format.pp_print_string ppf "off"
    | Sym_auto -> Format.pp_print_string ppf "auto"
    | Sym_group s -> Format.pp_print_string ppf s
  in
  Arg.conv (parse, print)

let symmetry_arg =
  let doc =
    "Symmetry reduction: $(b,off) (the default; bit-identical to \
     builds without the feature), $(b,auto) (infer candidate \
     role-permutation groups and exploit whatever survives the \
     commutation/orbit audits), or a named group ($(b,full), \
     $(b,rot)) audited as a claim.  A claim that fails its audit is \
     rejected with a warning and the run falls back to identity — no \
     reduction is ever applied unaudited."
  in
  Arg.(value & opt sym_mode_conv Sym_off & info [ "symmetry" ] ~doc ~docv:"MODE")

let check_cmd =
  let doc = "Model-check a protocol offline from its initial state." in
  let run protocol checker max_depth time_limit crash_budget verbose minimize
      dot json metrics_out trace_out progress domains verify_domains symmetry
      record record_ring telemetry =
    match find_runner protocol with
    | Error e ->
        prerr_endline e;
        2
    | Ok r ->
        let obs, finish =
          make_scope ~telemetry ?record ~metrics_out ~trace_out ~progress ()
        in
        let trace, finish_trace = make_trace ~record ~record_ring in
        Fun.protect
          ~finally:(fun () ->
            finish_trace ();
            finish ())
          (fun () ->
            emit_run_header trace ~protocol ~mode:"check"
              ~checker:(checker_name checker) ~max_depth ~domains
              ~verify_domains ~symmetry;
            let code =
              r.check
                { kind = checker; max_depth; time_limit; crash_budget;
                  verbose; minimize; dot; json; obs; domains; verify_domains;
                  symmetry; trace }
            in
            emit_run_end trace code;
            code)
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run $ protocol_arg $ checker_arg $ depth_arg $ time_arg
      $ crash_budget_arg $ verbose_arg $ minimize_arg $ dot_arg $ json_arg
      $ metrics_out_arg $ trace_out_arg $ progress_arg $ domains_arg
      $ verify_domains_arg $ symmetry_arg $ record_arg $ record_ring_arg
      $ telemetry_term)

let seed_arg =
  let doc = "Simulation seed." in
  Arg.(value & opt int 7 & info [ "s"; "seed" ] ~doc)

let drop_arg =
  let doc = "Non-loopback message drop probability." in
  Arg.(value & opt float 0.3 & info [ "drop" ] ~doc)

let interval_arg =
  let doc = "Simulated seconds between checker restarts." in
  Arg.(value & opt float 30.0 & info [ "interval" ] ~doc)

let max_live_arg =
  let doc = "Give up after this much simulated time." in
  Arg.(value & opt float 3600.0 & info [ "max-live" ] ~doc)

let budget_arg =
  let doc = "Wall-clock budget per checker restart (seconds)." in
  Arg.(value & opt float 5.0 & info [ "budget" ] ~doc)

let steer_arg =
  let doc =
    "Execution steering: veto predicted violation triggers in the live \
     system and keep running instead of stopping at the first report."
  in
  Arg.(value & flag & info [ "steer" ] ~doc)

(* Parse --faults through the plan DSL so a bad clause is a usage
   error with the parser's own diagnostic, not a runtime failure. *)
let fault_plan_conv =
  let parse s =
    match Fault.Plan.of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Fault.Plan.pp)

let faults_arg =
  let doc =
    "Fault plan injected into the live simulation: semicolon-separated \
     clauses, e.g. \
     'crash:node=0,at=40,recover=60,persist=hook;dup:p=0.1'.  Same seed \
     + same plan replays bit-identically."
  in
  Arg.(
    value
    & opt fault_plan_conv Fault.Plan.empty
    & info [ "faults" ] ~doc ~docv:"PLAN")

let restart_budget_ms_arg =
  let doc =
    "Supervisor wall-clock budget per checker restart; restarts that \
     consume it degrade the next one (shrink depth, prune harder, defer \
     soundness) instead of stalling the loop."
  in
  Arg.(
    value & opt (some int) None & info [ "restart-budget-ms" ] ~doc ~docv:"MS")

let max_retries_arg =
  let doc =
    "Supervisor retries per restart when the checker fails, with \
     jittered exponential backoff."
  in
  Arg.(value & opt (some int) None & info [ "max-retries" ] ~doc ~docv:"N")

let store_arg =
  let doc =
    "Persist the hunt's stores (per-node states, I+, clean \
     combinations) in mmap'd files under $(docv), checkpointed after \
     every snapshot check.  See --resume."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~doc ~docv:"DIR")

let resume_arg =
  let doc =
    "Warm-start from the checkpoint in --store: fast-forward the \
     deterministic simulation to the saved live time and skip every \
     combination an earlier phase proved invariant-clean.  A corrupt \
     or mismatched checkpoint degrades to a cold start."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let hunt_cmd =
  let doc =
    "Run a simulated lossy deployment with periodic LMC restarts (online \
     model checking, 3.3)."
  in
  let run protocol seed drop interval max_live budget steer faults
      crash_budget restart_budget_ms max_retries store_dir resume symmetry
      metrics_out trace_out progress domains verify_domains record
      record_ring telemetry =
    if resume && store_dir = None then begin
      prerr_endline "lmc_cli: --resume requires --store DIR";
      exit 2
    end;
    match find_runner protocol with
    | Error e ->
        prerr_endline e;
        2
    | Ok { hunt = None; _ } ->
        prerr_endline "this protocol has no online-hunt setup";
        2
    | Ok { hunt = Some h; _ } ->
        let obs, finish =
          make_scope ~telemetry ?record ~metrics_out ~trace_out ~progress ()
        in
        let trace, finish_trace = make_trace ~record ~record_ring in
        Fun.protect
          ~finally:(fun () ->
            finish_trace ();
            finish ())
          (fun () ->
            emit_run_header trace ~protocol ~mode:"hunt" ~checker:"lmc"
              ~max_depth:None ~domains ~verify_domains ~symmetry;
            let code =
              h ~obs ~trace ~seed ~drop ~interval ~max_live ~budget ~steer
                ~faults ~crash_budget ~restart_budget_ms ~max_retries
                ~store_dir ~resume ~symmetry ~domains ~verify_domains
            in
            emit_run_end trace code;
            code)
  in
  Cmd.v
    (Cmd.info "hunt" ~doc)
    Term.(
      const run $ protocol_arg $ seed_arg $ drop_arg $ interval_arg
      $ max_live_arg $ budget_arg $ steer_arg $ faults_arg
      $ crash_budget_arg $ restart_budget_ms_arg $ max_retries_arg
      $ store_arg $ resume_arg $ symmetry_arg $ metrics_out_arg
      $ trace_out_arg $ progress_arg $ domains_arg $ verify_domains_arg
      $ record_arg $ record_ring_arg $ telemetry_term)

let trace_file_arg =
  let doc = "A trace.v1 JSONL file produced by --record." in
  Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"TRACE")

let replay_cmd =
  let doc =
    "Re-execute a flight-recorder file transition by transition; exits \
     non-zero on any fingerprint divergence."
  in
  let replay_domains_arg =
    let doc =
      "Re-run the exploration at $(docv) worker domains (default: the \
       recorded count).  The record stream must stay bit-identical \
       either way."
    in
    Arg.(value & opt (some pos_int) None & info [ "domains" ] ~doc ~docv:"N")
  in
  let run file domains =
    match (try Ok (load_trace file) with Sys_error msg -> Error msg) with
    | Error msg ->
        Printf.eprintf "lmc_cli: %s\n%!" msg;
        2
    | Ok records -> (
        match List.find_opt (fun f -> ev_of f = "run") records with
        | None ->
            Printf.eprintf
              "lmc_cli: %s: no run header; was it recorded with --record?\n%!"
              file;
            2
        | Some header -> (
            let mode =
              Option.value ~default:"check" (jstr (jfield "mode" header))
            in
            match jstr (jfield "protocol" header) with
            | None ->
                Printf.eprintf "lmc_cli: %s: run header names no protocol\n%!"
                  file;
                2
            | Some protocol -> (
                match find_runner protocol with
                | Error e ->
                    prerr_endline e;
                    2
                | Ok r -> r.replay ~mode ~header ~records ~domains)))
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ trace_file_arg $ replay_domains_arg)

let lint_cmd =
  let doc =
    "Run the protocol sanitizers (determinism, digest canonicality, \
     enabled_actions purity, dead-constructor coverage) over bundled \
     protocol instances."
  in
  let protocol_opt_arg =
    let doc = "Protocol instance to lint (see `list'; includes fixtures)." in
    Arg.(value & opt (some string) None & info [ "p"; "protocol" ] ~doc)
  in
  let all_arg =
    let doc = "Lint every bundled instance, fixtures included." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let transitions_arg =
    let doc = "Handler-invocation budget per protocol." in
    Arg.(
      value & opt pos_int 20_000 & info [ "max-transitions" ] ~doc ~docv:"N")
  in
  let out_arg =
    let doc = "Stream findings as lint.v1 JSONL to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~doc ~docv:"FILE")
  in
  let allow_arg =
    let doc =
      "Allowlist of expected findings (JSONL: protocol/kind/subject \
       objects, # comments).  The exit code then reflects the \
       reconciliation: unexpected findings or stale entries fail."
    in
    Arg.(value & opt (some string) None & info [ "allow" ] ~doc ~docv:"FILE")
  in
  let lint_symmetry_arg =
    let doc =
      "Symmetry audit mode: $(b,auto) (the default: audit each \
       target's own claim if it has one, silently infer otherwise), \
       $(b,off) (sanitizers only), or a named group ($(b,full), \
       $(b,rot)) claimed for every target."
    in
    Arg.(
      value & opt sym_mode_conv Sym_auto & info [ "symmetry" ] ~doc ~docv:"MODE")
  in
  let run protocol all max_depth max_transitions out allow sym =
    let targets =
      match (protocol, all) with
      | Some _, true -> Error "use either -p or --all, not both"
      | None, false -> Error "name a protocol with -p, or pass --all"
      | None, true -> Ok lint_targets
      | Some name, false -> (
          match List.assoc_opt name lint_targets with
          | Some l -> Ok [ (name, l) ]
          | None ->
              Error
                (Printf.sprintf "unknown protocol %S; try `lmc_cli list'"
                   name))
    in
    let allowlist =
      match allow with
      | None -> Ok []
      | Some path ->
          Result.map_error
            (fun e -> Printf.sprintf "%s: %s" path e)
            (Lint.Report.load_allowlist path)
    in
    match (targets, allowlist) with
    | Error e, _ | _, Error e ->
        Printf.eprintf "lmc_cli: %s\n%!" e;
        2
    | Ok targets, Ok allow ->
        let emitter, close_sink =
          match out with
          | None -> (Lint.Report.null, fun () -> ())
          | Some path -> (
              match Obs.Sink.jsonl_file path with
              | sink -> (Lint.Report.to_sink sink, fun () -> Obs.Sink.close sink)
              | exception Sys_error msg ->
                  Printf.eprintf "lmc_cli: %s\n%!" msg;
                  exit 2)
        in
        Fun.protect ~finally:close_sink (fun () ->
            Format.printf "%-18s %8s %8s %8s %10s  %s@." "PROTOCOL" "STATES"
              "TRANS" "PROBES" "TIME" "FINDINGS";
            let results =
              List.map
                (fun (name, l) ->
                  Lint.Report.emit_start emitter ~protocol:name ~max_depth
                    ~max_transitions;
                  let r = l ~max_depth ~max_transitions ~sym in
                  List.iter (Lint.Report.emit_finding emitter) r.l_findings;
                  Lint.Report.emit_end emitter ~protocol:name
                    ~findings:(List.length r.l_findings)
                    ~transitions:r.l_transitions ~states:r.l_states
                    ~elapsed_s:r.l_elapsed;
                  Format.printf "%-18s %8d %8d %8d %9.3fs  %d%s@." name
                    r.l_states r.l_transitions r.l_probes r.l_elapsed
                    (List.length r.l_findings)
                    (if r.l_completed then "" else " (budget-truncated)");
                  List.iter
                    (fun f ->
                      Format.printf "  %a@." Lint.Report.pp_finding f)
                    r.l_findings;
                  r)
                targets
            in
            let findings = List.concat_map (fun r -> r.l_findings) results in
            let { Lint.Report.unexpected; stale } =
              Lint.Report.reconcile ~allow
                ~linted:(List.map (fun r -> r.l_name) results)
                findings
            in
            match (unexpected, stale) with
            | [], [] ->
                Format.printf
                  "lint: %d protocol(s), %d finding(s), all allowlisted@."
                  (List.length results) (List.length findings);
                0
            | _ ->
                List.iter
                  (fun f ->
                    Format.printf "UNEXPECTED %a@." Lint.Report.pp_finding f)
                  unexpected;
                List.iter
                  (fun (e : Lint.Report.allow_entry) ->
                    Format.printf
                      "STALE allowlist entry %s: %s: %s (not found; drop it \
                       or fix the lint)@."
                      e.a_protocol
                      (Lint.Report.kind_to_string e.a_kind)
                      e.a_subject)
                  stale;
                1)
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ protocol_opt_arg $ all_arg $ depth_arg $ transitions_arg
      $ out_arg $ allow_arg $ lint_symmetry_arg)

let report_cmd =
  let doc =
    "Render an offline run report (handler coverage, depth and |I+| \
     curves, per-phase time attribution, pool utilization, witness \
     sequence charts) from recorded trace/metrics streams."
  in
  let metrics_arg =
    let doc = "Metrics JSONL (from --metrics-out) for pool statistics." in
    Arg.(
      value & opt (some string) None & info [ "metrics" ] ~doc ~docv:"FILE")
  in
  let report_profile_arg =
    let doc =
      "Also render the sampled profile (self time per frame, hottest \
       stacks) from the profile.v1 records a --profile run appended to \
       the file."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let run file metrics_path profile =
    match (try Ok (load_trace file) with Sys_error msg -> Error msg) with
    | Error msg ->
        Printf.eprintf "lmc_cli: %s\n%!" msg;
        2
    | Ok records -> (
        let prof_records =
          if profile then load_records ~schema:Obs.Prof.schema file else []
        in
        if profile && prof_records = [] then begin
          Printf.eprintf
            "lmc_cli: %s: no profile.v1 records (was the run recorded \
             with --profile?)\n\
             %!"
            file;
          2
        end
        else if records = [] && not profile then begin
          Printf.eprintf "lmc_cli: %s: no trace.v1 records\n%!" file;
          2
        end
        else
          try
            let code =
              if records = [] then 0 else Report.render ~records ~metrics_path
            in
            if profile then
              max code (Report.render_profile prof_records)
            else code
          with Sys_error msg ->
            Printf.eprintf "lmc_cli: %s\n%!" msg;
            2)
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ trace_file_arg $ metrics_arg $ report_profile_arg)

(* ------------------------------------------------------------------ *)
(* Named scenarios                                                     *)
(* ------------------------------------------------------------------ *)

(* The bundled suite.  The scenario layer (lib/sim/scenario.ml) is
   protocol-generic; the concrete closures live here because only the
   CLI sees both the protocol registry and the online checker.  Every
   scenario is a pure value — name, seed, plan and expected verdict
   are fixed, so the same scenario replays bit-identically at any
   --domains count. *)

let parse_plan ~name plan =
  if plan = "" then Fault.Plan.empty
  else
    match Fault.Plan.of_string plan with
    | Ok p -> p
    | Error e -> invalid_arg (Printf.sprintf "scenario %s: %s" name e)

let popcount membership =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 membership

(* Membership events the plan schedules, for the hunt-side report
   (soaks count executed churn from the simulator itself). *)
let plan_churn faults =
  List.length
    (List.filter
       (fun (_, ev) ->
         match ev with
         | `Join _ | `Leave _ -> true
         | `Crash _ | `Recover _ -> false)
       (Fault.Plan.node_events faults))

let swim_soak ~name ~description ~nodes ~seed ~plan ?(drop = 0.1)
    ?(check_every = 5.) ~duration () =
  let faults = parse_plan ~name plan in
  {
    Sim.Scenario.name;
    description;
    protocol = "swim";
    nodes;
    seed;
    plan;
    kind = Sim.Scenario.Soak;
    expected = Sim.Scenario.Clean;
    run =
      (fun ~domains:_ ->
        let module P = Protocols.Swim.Make (struct
          let num_servers = nodes
          let bug = Protocols.Swim.No_bug
        end) in
        let module K = Sim.Scenario.Soak (P) in
        let link =
          Net.Lossy_link.create ~drop_prob:drop ~latency_min:0.05
            ~latency_max:0.3 ()
        in
        K.run ~check_every ~invariant:P.membership_safety ~duration
          {
            K.S.seed;
            link;
            timer_min = 2.0;
            timer_max = 20.0;
            action_prob = None;
            faults;
          });
  }

let ping_soak ~name ~description ~seed ~plan ~duration () =
  let faults = parse_plan ~name plan in
  {
    Sim.Scenario.name;
    description;
    protocol = "ping";
    nodes = 3;
    seed;
    plan;
    kind = Sim.Scenario.Soak;
    expected = Sim.Scenario.Clean;
    run =
      (fun ~domains:_ ->
        let module P = Protocols.Ping.Make (struct
          let num_servers = 2
        end) in
        let module K = Sim.Scenario.Soak (P) in
        let link =
          Net.Lossy_link.create ~drop_prob:0.2 ~latency_min:0.05
            ~latency_max:0.3 ()
        in
        K.run ~invariant:P.no_excess_pongs ~duration
          {
            K.S.seed;
            link;
            timer_min = 2.0;
            timer_max = 20.0;
            action_prob = None;
            faults;
          });
  }

let pb_soak ~name ~description ~seed ~plan ~duration () =
  let faults = parse_plan ~name plan in
  {
    Sim.Scenario.name;
    description;
    protocol = "pb-store";
    nodes = 3;
    seed;
    plan;
    kind = Sim.Scenario.Soak;
    expected = Sim.Scenario.Clean;
    run =
      (fun ~domains:_ ->
        let module P = Protocols.Pb_store.Make (struct
          let key = 7
          let value = 42
          let bug = Protocols.Pb_store.No_bug
        end) in
        let module K = Sim.Scenario.Soak (P) in
        let link =
          Net.Lossy_link.create ~drop_prob:0.2 ~latency_min:0.05
            ~latency_max:0.3 ()
        in
        K.run ~invariant:P.read_your_writes ~duration
          {
            K.S.seed;
            link;
            timer_min = 2.0;
            timer_max = 20.0;
            action_prob = None;
            faults;
          });
  }

(* Hunt-kind scenarios drive the full online checker, same shape as
   `lmc hunt' but with the scenario's fixed knobs.  The checker's
   crash budget mirrors the plan: a scenario whose plan crashes the
   relay also lets the checker explore one crash per node path. *)
let swim_hunt ~name ~description ~bug ~protocol ~seed ~plan ~drop
    ~crash_budget ~interval ~max_live ~budget ~expected () =
  let nodes = 4 in
  let faults = parse_plan ~name plan in
  {
    Sim.Scenario.name;
    description;
    protocol;
    nodes;
    seed;
    plan;
    kind = Sim.Scenario.Hunt;
    expected;
    run =
      (fun ~domains ->
        let module P = Protocols.Swim.Make (struct
          let num_servers = nodes
          let bug = bug
        end) in
        let module O = Online.Online_mc.Make (P) (P) in
        let module S = Sim.Live_sim.Make (P) in
        let link =
          Net.Lossy_link.create ~drop_prob:drop ~latency_min:0.05
            ~latency_max:0.3 ()
        in
        let config =
          {
            O.sim =
              {
                S.seed;
                link;
                timer_min = 2.0;
                timer_max = 20.0;
                action_prob = None;
                faults;
              };
            check_interval = interval;
            max_live_time = max_live;
            checker =
              {
                O.Checker.default_config with
                time_limit = Some budget;
                max_transitions = Some 100_000;
                crash_budget;
                domains;
              };
            action_bounds = [ 1; 2 ];
            steer = false;
            steer_scope = `Node;
            supervisor =
              { O.default_supervisor with checksum_snapshots = true };
            store = None;
          }
        in
        let outcome =
          O.run config ~strategy:O.Checker.General
            ~invariant:P.membership_safety
        in
        let fleet = popcount outcome.O.membership in
        let churn = plan_churn faults in
        match outcome.O.report with
        | Some r ->
            let v = r.O.violation.O.Checker.violation in
            {
              Sim.Scenario.verdict = Sim.Scenario.Violation;
              detail =
                Printf.sprintf "%s: %s (witness %d event(s) at t=%.0f)"
                  v.Dsm.Invariant.invariant v.Dsm.Invariant.detail
                  r.O.violation.O.Checker.system_depth r.O.live_time;
              steps = outcome.O.states_explored;
              churn;
              fleet;
            }
        | None ->
            {
              Sim.Scenario.verdict = Sim.Scenario.Clean;
              detail = "";
              steps = outcome.O.states_explored;
              churn;
              fleet;
            });
  }

let scenario_suite () =
  [
    swim_soak ~name:"churn-storm"
      ~description:
        "8-node SWIM fleet under join/leave waves with a crash-recovery \
         in the middle"
      ~nodes:8 ~seed:11
      ~plan:
        "join:node=6,at=15;leave:node=2,at=20;leave:node=5,at=25;\
         crash:node=1,at=30,recover=45;join:node=2,at=50;leave:node=7,at=70;\
         join:node=5,at=80"
      ~duration:120. ();
    ping_soak ~name:"partition-heal"
      ~description:
        "client/2-server ping under a 40 s partition that heals mid-run"
      ~seed:3 ~plan:"part:from=20,until=60,cut=0+1/2" ~duration:120. ();
    pb_soak ~name:"crash-recover-waves"
      ~description:
        "primary-backup store through three crash-recovery waves"
      ~seed:5
      ~plan:
        "crash:node=0,at=20,recover=30;crash:node=1,at=45,recover=60;\
         crash:node=0,at=80,recover=95"
      ~duration:120. ();
    swim_soak ~name:"skewed-load"
      ~description:
        "6-node SWIM under open-loop client load, 4/s bursting then \
         trickling, with one departure"
      ~nodes:6 ~seed:19
      ~plan:"load:rate=4,from=5,until=60;load:rate=1,from=70,until=110;\
             leave:node=4,at=40"
      ~duration:120. ();
    swim_soak ~name:"churn-500"
      ~description:
        "500-node SWIM fleet absorbing join/leave churn (scale soak)"
      ~nodes:500 ~seed:23
      ~plan:
        "leave:node=17,at=10;leave:node=230,at=15;join:node=499,at=5;\
         leave:node=400,at=20;join:node=17,at=35;leave:node=88,at=40;\
         join:node=230,at=50"
      ~drop:0.05 ~check_every:10. ~duration:60. ();
    swim_hunt ~name:"nosuspect-storm"
      ~description:
        "no-suspicion SWIM under an ack-delaying reorder/dup storm \
         (expected: false-positive death verdict)"
      ~bug:Protocols.Swim.No_suspicion ~protocol:"swim-nosuspect" ~seed:11
      ~plan:"reorder:p=0.8,window=40;dup:p=0.3" ~drop:0.0 ~crash_budget:0
      ~interval:15. ~max_live:600. ~budget:2.0
      ~expected:Sim.Scenario.Violation ();
    swim_hunt ~name:"nosuspect-calm"
      ~description:
        "no-suspicion SWIM on a calm network (control: the bug stays \
         latent without the storm)"
      ~bug:Protocols.Swim.No_suspicion ~protocol:"swim-nosuspect" ~seed:11
      ~plan:"" ~drop:0.0 ~crash_budget:0 ~interval:15. ~max_live:60.
      ~budget:1.0 ~expected:Sim.Scenario.Clean ();
    swim_hunt ~name:"ackrace-crash"
      ~description:
        "ack-race SWIM with the relay crash-recovering mid-duty \
         (expected: phantom forwarded ack)"
      ~bug:Protocols.Swim.Ack_race ~protocol:"swim-ackrace" ~seed:5
      ~plan:
        "crash:node=2,at=30,recover=45;crash:node=2,at=120,recover=135;\
         crash:node=2,at=240,recover=255"
      ~drop:0.3 ~crash_budget:1 ~interval:15. ~max_live:900. ~budget:2.0
      ~expected:Sim.Scenario.Violation ();
    swim_hunt ~name:"ackrace-calm"
      ~description:
        "ack-race SWIM with no crashes (control: the stale seq is never \
         armed)"
      ~bug:Protocols.Swim.Ack_race ~protocol:"swim-ackrace" ~seed:5 ~plan:""
      ~drop:0.3 ~crash_budget:0 ~interval:15. ~max_live:60. ~budget:1.0
      ~expected:Sim.Scenario.Clean ();
  ]

let scenario_cmd =
  let doc =
    "Run named workload + fault-plan scenario bundles (churn storms, \
     partition-heal, crash waves, skewed load, planted-SWIM hunts) with \
     expected verdicts."
  in
  let list_flag =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the bundled scenarios and exit.")
  in
  let run_name_arg =
    let doc = "Run a single scenario by name." in
    Arg.(value & opt (some string) None & info [ "run" ] ~doc ~docv:"NAME")
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Run every bundled scenario; the exit code is 0 iff every \
             verdict matches its expectation.")
  in
  let scenario_out_arg =
    let doc = "Stream scenario.v1 JSONL records to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~doc ~docv:"FILE")
  in
  let run list_ run_name all_ out domains =
    let suite = scenario_suite () in
    if list_ then begin
      Format.printf "%-18s %-5s %-14s %6s %-10s %s@." "NAME" "KIND"
        "PROTOCOL" "NODES" "EXPECTED" "DESCRIPTION";
      List.iter
        (fun (s : Sim.Scenario.t) ->
          Format.printf "%-18s %-5s %-14s %6d %-10s %s@." s.name
            (Sim.Scenario.kind_to_string s.kind)
            s.protocol s.nodes
            (Sim.Scenario.verdict_to_string s.expected)
            s.description)
        suite;
      0
    end
    else
      let chosen =
        match (run_name, all_) with
        | Some _, true -> Error "use either --run or --all, not both"
        | None, false -> Error "pass --list, --run NAME or --all"
        | None, true -> Ok suite
        | Some name, false -> (
            match
              List.find_opt (fun (s : Sim.Scenario.t) -> s.name = name) suite
            with
            | Some s -> Ok [ s ]
            | None ->
                Error
                  (Printf.sprintf
                     "unknown scenario %S; try `lmc_cli scenario --list'"
                     name))
      in
      match chosen with
      | Error e ->
          Printf.eprintf "lmc_cli: %s\n%!" e;
          2
      | Ok scenarios -> (
          let events, close_sink =
            match out with
            | None -> (Sim.Scenario.Events.null, fun () -> ())
            | Some path -> (
                match Obs.Sink.jsonl_file path with
                | sink ->
                    ( Sim.Scenario.Events.of_sink sink,
                      fun () -> Obs.Sink.close sink )
                | exception Sys_error msg ->
                    Printf.eprintf "lmc_cli: %s\n%!" msg;
                    exit 2)
          in
          Fun.protect ~finally:close_sink (fun () ->
              Format.printf "%-18s %-5s %-10s %-10s %-4s %s@." "NAME" "KIND"
                "EXPECTED" "VERDICT" "OK" "DETAIL";
              let outcomes =
                Sim.Scenario.run_all ~domains events scenarios
              in
              List.iter
                (fun (o : Sim.Scenario.outcome) ->
                  Format.printf "%-18s %-5s %-10s %-10s %-4s %s@."
                    o.scenario.Sim.Scenario.name
                    (Sim.Scenario.kind_to_string o.scenario.Sim.Scenario.kind)
                    (Sim.Scenario.verdict_to_string
                       o.scenario.Sim.Scenario.expected)
                    (Sim.Scenario.verdict_to_string o.report.Sim.Scenario.verdict)
                    (if o.pass then "ok" else "FAIL")
                    (Printf.sprintf
                       "%d step(s), %d churn, fleet %d, %.1fs%s"
                       o.report.Sim.Scenario.steps
                       o.report.Sim.Scenario.churn o.report.Sim.Scenario.fleet
                       o.elapsed
                       (if o.report.Sim.Scenario.detail = "" then ""
                        else "; " ^ o.report.Sim.Scenario.detail)))
                outcomes;
              let failed =
                List.filter (fun (o : Sim.Scenario.outcome) -> not o.pass)
                  outcomes
              in
              Format.printf "scenario: %d run, %d verdict mismatch(es)@."
                (List.length outcomes) (List.length failed);
              if failed = [] then 0 else 1))
  in
  Cmd.v
    (Cmd.info "scenario" ~doc)
    Term.(
      const run $ list_flag $ run_name_arg $ all_flag $ scenario_out_arg
      $ domains_arg)

let () =
  let doc = "local model checking of distributed protocols (NSDI'11)" in
  let info = Cmd.info "lmc_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            check_cmd;
            hunt_cmd;
            scenario_cmd;
            lint_cmd;
            replay_cmd;
            report_cmd;
          ]))
