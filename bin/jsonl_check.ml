(* jsonl_check: validate that every line of a JSONL file parses as a
   JSON value.  Exits 0 when the whole file is well-formed, 1 with a
   line-numbered diagnostic otherwise.  Used by `make check' to assert
   that the CLI's --metrics-out / --trace-out streams stay parseable. *)

let check_file path =
  let ic = open_in path in
  let rec loop lineno ok =
    match input_line ic with
    | exception End_of_file -> ok
    | line when String.trim line = "" -> loop (lineno + 1) ok
    | line -> (
        match Dsm.Json.of_string line with
        | Ok _ -> loop (lineno + 1) ok
        | Error msg ->
            Printf.eprintf "%s:%d: %s\n" path lineno msg;
            loop (lineno + 1) false)
  in
  let ok = loop 1 true in
  close_in ic;
  ok

let () =
  let paths = List.tl (Array.to_list Sys.argv) in
  if paths = [] then begin
    prerr_endline "usage: jsonl_check FILE...";
    exit 2
  end;
  let ok = List.for_all check_file paths in
  exit (if ok then 0 else 1)
