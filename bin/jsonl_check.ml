(* jsonl_check: validate that every line of a JSONL file parses as a
   JSON value, and that lines carrying a known schema tag ("schema":
   "trace.v1" from the flight recorder, "lint.v1" from `lmc lint
   --out', "store.v1" from the persistent-checkpoint layer,
   "profile.v1" from the sampling profiler, "timeseries.v1" from the
   heartbeat gauge ring, "scenario.v1" from `lmc scenario') are
   well-formed records: known record kind, the fields that kind
   requires, and strictly increasing [seq] numbers per schema.  Exits
   0 when every file is well-formed, 1 with line-numbered diagnostics
   otherwise.  Used by `make check' / `make lint' to assert that the
   CLI's machine-readable streams stay parseable. *)

let trace_schema = "trace.v1"
let lint_schema = "lint.v1"
let store_schema = "store.v1"
let profile_schema = "profile.v1"
let timeseries_schema = "timeseries.v1"
let scenario_schema = "scenario.v1"

let field name fields = List.assoc_opt name fields

let is_int = function Dsm.Json.Int _ -> true | _ -> false
let is_string = function Dsm.Json.String _ -> true | _ -> false
let is_list = function Dsm.Json.List _ -> true | _ -> false
let is_bool = function Dsm.Json.Bool _ -> true | _ -> false
let is_number = function Dsm.Json.Int _ | Dsm.Json.Float _ -> true | _ -> false
let is_obj = function Dsm.Json.Obj _ -> true | _ -> false

(* Required fields per record kind: the CLI's [run]/[end] framing and
   every record the checkers emit.  A missing kind here means a
   producer grew a record type without teaching the validator. *)
let required_fields = function
  | "run" -> Some [ ("protocol", is_string); ("mode", is_string) ]
  | "end" -> Some [ ("exit", is_int) ]
  | "lmc_run" -> Some [ ("protocol", is_string); ("nodes", is_int) ]
  | "lmc_end" ->
      Some
        [
          ("transitions", is_int);
          ("symmetry", is_string);
          ("orbit_hits", is_int);
          ("completed", is_bool);
        ]
  | "bdfs_run" -> Some [ ("protocol", is_string); ("domains", is_int) ]
  | "bdfs_end" ->
      Some
        [
          ("transitions", is_int);
          ("symmetry", is_string);
          ("orbit_hits", is_int);
          ("completed", is_bool);
        ]
  | "step" ->
      Some
        [
          ("node", is_int);
          ("kind", is_string);
          ("src", is_int);
          ("label", is_string);
          ("fp_before", is_string);
          ("fp_after", is_string);
          ("produced", is_list);
          ("depth", is_int);
          ("dom", is_int);
        ]
  | "drop" ->
      Some [ ("node", is_int); ("kind", is_string); ("label", is_string) ]
  | "prelim" -> Some [ ("invariant", is_string); ("tuple", is_list) ]
  | "soundness" -> Some [ ("kind", is_string); ("verdict", is_string) ]
  | "reject" -> Some [ ("invariant", is_string); ("why", is_string) ]
  | "witness" ->
      Some
        [
          ("invariant", is_string);
          ("protocol", is_string);
          ("init", is_list);
          ("wsteps", is_list);
          ("final_fp", is_string);
        ]
  | "phases" -> Some [ ("elapsed_us", is_int) ]
  | "restart" -> Some [ ("run", is_int); ("live_time", is_number) ]
  | "live" -> Some [ ("clock", is_number); ("kind", is_string) ]
  | "ring_meta" -> Some [ ("dropped", is_int); ("capacity", is_int) ]
  | _ -> None

(* The sanitizer's finding taxonomy; `lmc lint' must not grow a kind
   without teaching the validator (and the allowlist readers). *)
let lint_kinds =
  [
    "nondeterministic_handler";
    "nondeterministic_actions";
    "noncanonical_state";
    "digest_collision";
    "unmarshalable_state";
    "dead_message";
    "dead_action";
    "handler_exception";
    "nondeterministic_recovery";
    "store_digest_drift";
    "broken_symmetry";
    "unsound_orbit";
  ]

let is_lint_kind = function
  | Dsm.Json.String s -> List.mem s lint_kinds
  | _ -> false

let lint_required_fields = function
  | "run_start" -> Some [ ("protocol", is_string); ("max_transitions", is_int) ]
  | "finding" ->
      Some
        [
          ("kind", is_lint_kind);
          ("protocol", is_string);
          ("subject", is_string);
          ("detail", is_string);
        ]
  | "run_end" ->
      Some
        [
          ("protocol", is_string);
          ("findings", is_int);
          ("transitions", is_int);
          ("states", is_int);
          ("elapsed_s", is_number);
        ]
  | _ -> None

(* The checkpoint layer's record kinds (lib/store/events.ml): opening
   or resuming a checkpoint directory, the per-snapshot flush, and
   hash-table growth.  Like lint.v1, the stream interleaves with
   trace.v1 in one JSONL sink but numbers its own [seq] space. *)
let store_required_fields = function
  | "open" -> Some [ ("dir", is_string); ("resumed", is_bool) ]
  | "flush" ->
      Some
        [
          ("live_time", is_number);
          ("combos", is_int);
          ("node_states", is_int);
          ("iplus", is_int);
          ("hits", is_int);
        ]
  | "compact" ->
      Some
        [
          ("file", is_string);
          ("old_capacity", is_int);
          ("new_capacity", is_int);
        ]
  | "resume" ->
      Some
        [
          ("dir", is_string);
          ("live_time", is_number);
          ("checks", is_int);
          ("states", is_int);
          ("hits", is_int);
        ]
  | _ -> None

(* The sampling profiler's export (lib/obs/prof.ml): one [prof_run]
   header with the run's total attributed time, then one [stack] line
   per distinct collapsed stack. *)
let profile_required_fields = function
  | "prof_run" -> Some [ ("clock_us", is_int); ("stacks", is_int) ]
  | "stack" ->
      Some [ ("stack", is_list); ("us", is_int); ("samples", is_int) ]
  | _ -> None

(* The heartbeat-driven gauge/counter ring (lib/obs/timeseries.ml):
   [ts_run] header, [sample] lines with the counter and gauge maps,
   and a [ts_meta] trailer accounting for ring drops. *)
let timeseries_required_fields = function
  | "ts_run" -> Some [ ("interval_s", is_number); ("capacity", is_int) ]
  | "sample" ->
      Some [ ("t", is_number); ("counters", is_obj); ("gauges", is_obj) ]
  | "ts_meta" ->
      Some [ ("samples", is_int); ("dropped", is_int); ("capacity", is_int) ]
  | _ -> None

(* The scenario runner (lib/sim/scenario.ml + `lmc scenario'): one
   [scenario_run] header per scenario with its full recipe, one
   [scenario_end] with the verdict/expectation reconciliation. *)
let scenario_required_fields = function
  | "scenario_run" ->
      Some
        [
          ("name", is_string);
          ("protocol", is_string);
          ("nodes", is_int);
          ("seed", is_int);
          ("plan", is_string);
          ("kind", is_string);
          ("expected", is_string);
          ("domains", is_int);
        ]
  | "scenario_end" ->
      Some
        [
          ("name", is_string);
          ("verdict", is_string);
          ("expected", is_string);
          ("pass", is_bool);
          ("steps", is_int);
          ("churn", is_int);
          ("fleet", is_int);
          ("detail", is_string);
          ("elapsed", is_number);
        ]
  | _ -> None

let check_record ~required_fields ~last_seq fields =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let seq =
    match field "seq" fields with
    | Some (Dsm.Json.Int s) ->
        if s <= last_seq then
          err "seq %d not greater than preceding seq %d" s last_seq;
        s
    | Some _ ->
        err "field \"seq\": expected int";
        last_seq
    | None ->
        err "missing field \"seq\"";
        last_seq
  in
  (match field "ev" fields with
  | Some (Dsm.Json.String ev) -> (
      match required_fields ev with
      | None -> err "unknown record kind %S" ev
      | Some reqs ->
          List.iter
            (fun (name, check) ->
              match field name fields with
              | None -> err "%s: missing field %S" ev name
              | Some v ->
                  if not (check v) then err "%s: field %S: wrong type" ev name)
            reqs)
  | Some _ -> err "field \"ev\": expected string"
  | None -> err "missing field \"ev\"");
  (seq, List.rev !errors)

(* Each schema validates independently: a file may interleave trace.v1
   and lint.v1 lines (both ride Obs sinks), and each stream numbers
   its own [seq] space. *)
let check_file path =
  let ic = open_in path in
  let last_trace_seq = ref (-1)
  and last_lint_seq = ref (-1)
  and last_store_seq = ref (-1)
  and last_profile_seq = ref (-1)
  and last_timeseries_seq = ref (-1)
  and last_scenario_seq = ref (-1) in
  let validate ~required_fields ~last_seq ~schema lineno fields =
    let seq, errors = check_record ~required_fields ~last_seq:!last_seq fields in
    last_seq := seq;
    List.iter
      (fun msg -> Printf.eprintf "%s:%d: %s: %s\n" path lineno schema msg)
      errors;
    errors = []
  in
  let rec loop lineno ok =
    match input_line ic with
    | exception End_of_file -> ok
    | line when String.trim line = "" -> loop (lineno + 1) ok
    | line -> (
        match Dsm.Json.of_string line with
        | Ok (Dsm.Json.Obj fields)
          when field "schema" fields = Some (Dsm.Json.String trace_schema) ->
            let ok' =
              validate ~required_fields ~last_seq:last_trace_seq
                ~schema:trace_schema lineno fields
            in
            loop (lineno + 1) (ok && ok')
        | Ok (Dsm.Json.Obj fields)
          when field "schema" fields = Some (Dsm.Json.String lint_schema) ->
            let ok' =
              validate ~required_fields:lint_required_fields
                ~last_seq:last_lint_seq ~schema:lint_schema lineno fields
            in
            loop (lineno + 1) (ok && ok')
        | Ok (Dsm.Json.Obj fields)
          when field "schema" fields = Some (Dsm.Json.String store_schema) ->
            let ok' =
              validate ~required_fields:store_required_fields
                ~last_seq:last_store_seq ~schema:store_schema lineno fields
            in
            loop (lineno + 1) (ok && ok')
        | Ok (Dsm.Json.Obj fields)
          when field "schema" fields = Some (Dsm.Json.String profile_schema)
          ->
            let ok' =
              validate ~required_fields:profile_required_fields
                ~last_seq:last_profile_seq ~schema:profile_schema lineno
                fields
            in
            loop (lineno + 1) (ok && ok')
        | Ok (Dsm.Json.Obj fields)
          when field "schema" fields
               = Some (Dsm.Json.String timeseries_schema) ->
            let ok' =
              validate ~required_fields:timeseries_required_fields
                ~last_seq:last_timeseries_seq ~schema:timeseries_schema
                lineno fields
            in
            loop (lineno + 1) (ok && ok')
        | Ok (Dsm.Json.Obj fields)
          when field "schema" fields = Some (Dsm.Json.String scenario_schema)
          ->
            let ok' =
              validate ~required_fields:scenario_required_fields
                ~last_seq:last_scenario_seq ~schema:scenario_schema lineno
                fields
            in
            loop (lineno + 1) (ok && ok')
        | Ok _ -> loop (lineno + 1) ok
        | Error msg ->
            Printf.eprintf "%s:%d: %s\n" path lineno msg;
            loop (lineno + 1) false)
  in
  let ok = loop 1 true in
  close_in ic;
  ok

let () =
  let paths = List.tl (Array.to_list Sys.argv) in
  if paths = [] then begin
    prerr_endline "usage: jsonl_check FILE...";
    exit 2
  end;
  let ok = List.for_all check_file paths in
  exit (if ok then 0 else 1)
