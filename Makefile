# Developer entry points.  `make check` is the tier-1 gate: build,
# unit tests, and a CLI smoke test asserting that the observability
# output stays parseable JSONL.

.PHONY: all build test check lint bench bench-quick soak soak-telemetry \
  soak-scenario clean

all: build

build:
	dune build

test:
	dune runtest

check: build test
	dune exec bin/lmc_cli.exe -- check -p paxos-buggy -c lmc-gen \
	  --metrics-out /tmp/m.jsonl --trace-out /tmp/t.jsonl \
	  --record /tmp/rec.jsonl > /dev/null; \
	  test $$? -le 1
	dune exec bin/jsonl_check.exe -- /tmp/m.jsonl /tmp/t.jsonl /tmp/rec.jsonl
	dune exec bin/lmc_cli.exe -- replay /tmp/rec.jsonl > /dev/null
	dune exec bin/lmc_cli.exe -- replay /tmp/rec.jsonl --domains 2 > /dev/null
	dune exec bin/lmc_cli.exe -- report /tmp/rec.jsonl --metrics /tmp/m.jsonl \
	  > /dev/null
	@echo "check: OK"

# Static-analysis gate: protocol sanitizers over every bundled instance
# (fixtures included), reconciled against the checked-in allowlist; the
# lint.v1 stream must itself validate.  The interleaving suite runs as
# part of `make test` (test/test_lint.ml).
lint: build
	dune exec bin/lmc_cli.exe -- lint --all --out lint.jsonl \
	  --allow lint_allow.jsonl
	dune exec bin/jsonl_check.exe -- lint.jsonl

# Robustness soak: supervised online hunts under three fault plans ×
# two protocols, bounded in simulated time.  Exit 0 (clean run) and
# exit 1 (violation found and witnessed) both pass — the gate is that
# the supervised loop survives every plan and each run leaves a
# flight-recorder artifact in soak/ that still validates as JSONL
# (CI uploads the artifacts).
SOAK_PLAN1 = crash:node=0,at=20,recover=35;crash:node=1,at=60,recover=80
SOAK_PLAN2 = dup:p=0.1;reorder:p=0.3,window=2;corrupt:p=0.02
SOAK_PLAN3 = part:from=10,until=40,cut=0+1/2;dup:p=0.05

soak: build
	mkdir -p soak
	for p in pb-store-crash paxos-buggy; do \
	  i=0; \
	  for plan in '$(SOAK_PLAN1)' '$(SOAK_PLAN2)' '$(SOAK_PLAN3)'; do \
	    i=$$((i+1)); \
	    echo "soak: $$p plan$$i [$$plan]"; \
	    dune exec bin/lmc_cli.exe -- hunt -p $$p --faults "$$plan" \
	      --interval 5 --max-live 120 --budget 2 --crash-budget 1 \
	      --restart-budget-ms 4000 --max-retries 2 \
	      --record soak/$$p-plan$$i.jsonl > /dev/null; \
	    s=$$?; test $$s -le 1 || exit $$s; \
	  done; \
	done
	$(MAKE) soak-resume
	$(MAKE) soak-telemetry
	$(MAKE) soak-scenario
	dune exec bin/jsonl_check.exe -- soak/*.jsonl
	@echo "soak: OK"

# Scenario-suite leg: the bundled churn/partition/load scenarios plus
# the planted-SWIM hunts, once per checker domain count.  `--all`
# already exits non-zero on any verdict mismatch; on top of that the
# two runs' per-scenario verdicts must be identical — domain count
# must never change what a scenario concludes.  The scenario.v1
# streams land in soak/ and validate with the other artifacts.
soak-scenario: build
	mkdir -p soak
	dune exec bin/lmc_cli.exe -- scenario --all --domains 1 \
	  --out soak/scenario-d1.jsonl > soak/scenario-d1.out
	dune exec bin/lmc_cli.exe -- scenario --all --domains 2 \
	  --out soak/scenario-d2.jsonl > soak/scenario-d2.out
	@v1=$$(sed -n \
	  's/.*"ev":"scenario_end","name":"\([^"]*\)","verdict":"\([^"]*\)".*/\1=\2/p' \
	  soak/scenario-d1.jsonl); \
	v2=$$(sed -n \
	  's/.*"ev":"scenario_end","name":"\([^"]*\)","verdict":"\([^"]*\)".*/\1=\2/p' \
	  soak/scenario-d2.jsonl); \
	echo "soak-scenario: domains=1 verdicts:"; echo "$$v1"; \
	test -n "$$v1" && test "$$v1" = "$$v2" \
	  || { echo "soak-scenario: verdicts diverge across domains"; exit 1; }
	@echo "soak-scenario: OK"

# Live-telemetry leg: one supervised hunt runs with the exporter up
# (--serve) plus the profiler and timeseries ring enabled.  While the
# hunt is live we scrape /healthz (must report "status":"ok"); once the
# final metrics dump lands the run lingers (--serve-linger) so we can
# take a final /metrics scrape and require that the scraped
# lmc_system_states_created_total equals lmc.system_states_created in
# the --metrics-out dump — the exporter serves the same registry the
# dump is written from, so any drift is a bug.  The flamegraph,
# speedscope, timeseries, and recorder files land in soak/ for the CI
# artifact upload; the JSONL ones are validated by the soak gate above.
SOAK_TELEMETRY_PORT = 19891

soak-telemetry: build
	mkdir -p soak
	rm -f soak/telemetry.jsonl soak/telemetry-metrics.jsonl \
	  soak/timeseries.jsonl soak/flamegraph.txt \
	  soak/profile.speedscope.json soak/healthz.json \
	  soak/scrape-mid.txt soak/scrape-final.txt
	dune exec bin/lmc_cli.exe -- hunt -p paxos-buggy \
	  --faults '$(SOAK_PLAN2)' \
	  --interval 5 --max-live 120 --budget 2 --crash-budget 1 \
	  --restart-budget-ms 4000 --max-retries 2 \
	  --record soak/telemetry.jsonl --profile \
	  --flamegraph soak/flamegraph.txt \
	  --speedscope soak/profile.speedscope.json \
	  --timeseries soak/timeseries.jsonl --timeseries-interval 0.5 \
	  --metrics-out soak/telemetry-metrics.jsonl \
	  --serve $(SOAK_TELEMETRY_PORT) --serve-linger 10 \
	  > soak/telemetry.out 2>&1 & \
	pid=$$!; \
	up=0; for i in $$(seq 1 100); do \
	  if curl -sf http://127.0.0.1:$(SOAK_TELEMETRY_PORT)/healthz \
	       > soak/healthz.json 2>/dev/null; then up=1; break; fi; \
	  sleep 0.2; \
	done; \
	if test $$up -ne 1; then \
	  echo "soak-telemetry: exporter never came up"; \
	  cat soak/telemetry.out; kill $$pid 2>/dev/null; exit 1; fi; \
	grep -q '"status":"ok"' soak/healthz.json || exit 1; \
	curl -sf http://127.0.0.1:$(SOAK_TELEMETRY_PORT)/metrics \
	  > soak/scrape-mid.txt 2>/dev/null || true; \
	dumped=0; for i in $$(seq 1 600); do \
	  if test -s soak/telemetry-metrics.jsonl; then dumped=1; break; fi; \
	  if ! kill -0 $$pid 2>/dev/null; then break; fi; \
	  sleep 0.2; \
	done; \
	if test $$dumped -ne 1; then \
	  echo "soak-telemetry: metrics dump never appeared"; \
	  cat soak/telemetry.out; kill $$pid 2>/dev/null; exit 1; fi; \
	curl -sf http://127.0.0.1:$(SOAK_TELEMETRY_PORT)/metrics \
	  > soak/scrape-final.txt; \
	wait $$pid; s=$$?; test $$s -le 1 || exit $$s
	test -s soak/flamegraph.txt
	@want=$$(sed -n \
	  's/.*"metric":"lmc.system_states_created".*"value":\([0-9]*\).*/\1/p' \
	  soak/telemetry-metrics.jsonl | tail -1); \
	got=$$(sed -n 's/^lmc_system_states_created_total \([0-9]*\)$$/\1/p' \
	  soak/scrape-final.txt); \
	echo "soak-telemetry: scraped=$$got dumped=$$want"; \
	test -n "$$want" && test "$$got" = "$$want"
	@echo "soak-telemetry: OK"

# Kill-and-resume legs over the pb-store-crash checkpoint format.  The
# checkpoint directories under soak/ ship with the CI soak artifacts.
#
# Leg A (robustness): SIGKILL a long hunt mid-run, then resume the
# torn checkpoint directory.  The resumed process must warm-start
# (resumed_at is a time, not "cold") and finish cleanly — a kill
# between checkpoint saves loses at most one check interval, never the
# directory.
#
# Leg B (incremental bar): phase 1 hunts with the checker
# under-provisioned (no --crash-budget, so the planted crash-recovery
# bug is unreachable) and stops inside the bug's live window (the
# plan's first crash at t=20 destroys the evidence); phase 2 resumes
# with crash exploration enabled and must find the bug (exit 1) from a
# warm start, and the resumed hunt's cumulative states-explored must
# stay below the sum of two cold runs of the same two configurations.
SOAK_RESUME = _build/default/bin/lmc_cli.exe hunt -p pb-store-crash \
  --faults '$(SOAK_PLAN1)' --interval 5 --budget 2

soak-resume: build
	rm -rf soak/store soak/store-kill soak/store-cold1 soak/store-cold2
	mkdir -p soak
	$(SOAK_RESUME) --max-live 30000 --store soak/store-kill \
	  > soak/resume-kill.out 2>&1 & \
	pid=$$!; sleep 1; kill -9 $$pid 2>/dev/null || true; \
	wait $$pid 2>/dev/null; true
	test -f soak/store-kill/meta.bin
	$(SOAK_RESUME) --max-live 30000 --store soak/store-kill --resume \
	  > soak/resume-killed-resumed.out 2>&1; test $$? -eq 0
	grep 'resumed_at=' soak/resume-killed-resumed.out; \
	grep 'resumed_at=' soak/resume-killed-resumed.out \
	  | grep -qv 'resumed_at=cold'
	$(SOAK_RESUME) --max-live 10 --store soak/store \
	  > soak/resume-phase1.out 2>&1; test $$? -eq 0
	$(SOAK_RESUME) --max-live 120 --crash-budget 1 --store soak/store \
	  --resume --record soak/resume-phase2.jsonl \
	  > soak/resume-phase2.out 2>&1; \
	s=$$?; test $$s -eq 1
	grep 'resumed_at=' soak/resume-phase2.out; \
	grep 'resumed_at=' soak/resume-phase2.out | grep -qv 'resumed_at=cold'
	grep -q '"schema":"store.v1"' soak/resume-phase2.jsonl
	$(SOAK_RESUME) --max-live 10 --store soak/store-cold1 \
	  > soak/resume-cold1.out 2>&1; test $$? -eq 0
	$(SOAK_RESUME) --max-live 120 --crash-budget 1 --store soak/store-cold2 \
	  > soak/resume-cold2.out 2>&1; test $$? -eq 1
	@combined=$$(sed -n 's/.*states_explored=\([0-9]*\).*/\1/p' \
	  soak/resume-phase2.out); \
	cold1=$$(sed -n 's/.*states_explored=\([0-9]*\).*/\1/p' \
	  soak/resume-cold1.out); \
	cold2=$$(sed -n 's/.*states_explored=\([0-9]*\).*/\1/p' \
	  soak/resume-cold2.out); \
	echo "soak-resume: combined=$$combined cold1=$$cold1 cold2=$$cold2"; \
	test "$$combined" -lt $$((cold1 + cold2))
	@echo "soak-resume: OK"

bench:
	dune exec bench/main.exe

# CI-sized pass: micro-benchmarks plus the telemetry-overhead gate,
# trimmed budgets (used by the workflow in .github/workflows/ci.yml).
# The telemetry section records within_bar in BENCH_lmc.json; the grep
# enforces the <=5% overhead bar.
bench-quick:
	dune exec bench/main.exe -- --quick --only micro --only telemetry-overhead \
	  --only symmetry --only churn
	grep -q '"within_bar":true' BENCH_lmc.json
	grep -q '"symmetric_ok":true' BENCH_lmc.json
	grep -q '"asymmetric_ok":true' BENCH_lmc.json
	grep -q '"churn_within_bar":true' BENCH_lmc.json

clean:
	dune clean
