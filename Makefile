# Developer entry points.  `make check` is the tier-1 gate: build,
# unit tests, and a CLI smoke test asserting that the observability
# output stays parseable JSONL.

.PHONY: all build test check lint bench bench-quick soak clean

all: build

build:
	dune build

test:
	dune runtest

check: build test
	dune exec bin/lmc_cli.exe -- check -p paxos-buggy -c lmc-gen \
	  --metrics-out /tmp/m.jsonl --trace-out /tmp/t.jsonl \
	  --record /tmp/rec.jsonl > /dev/null; \
	  test $$? -le 1
	dune exec bin/jsonl_check.exe -- /tmp/m.jsonl /tmp/t.jsonl /tmp/rec.jsonl
	dune exec bin/lmc_cli.exe -- replay /tmp/rec.jsonl > /dev/null
	dune exec bin/lmc_cli.exe -- replay /tmp/rec.jsonl --domains 2 > /dev/null
	dune exec bin/lmc_cli.exe -- report /tmp/rec.jsonl --metrics /tmp/m.jsonl \
	  > /dev/null
	@echo "check: OK"

# Static-analysis gate: protocol sanitizers over every bundled instance
# (fixtures included), reconciled against the checked-in allowlist; the
# lint.v1 stream must itself validate.  The interleaving suite runs as
# part of `make test` (test/test_lint.ml).
lint: build
	dune exec bin/lmc_cli.exe -- lint --all --out lint.jsonl \
	  --allow lint_allow.jsonl
	dune exec bin/jsonl_check.exe -- lint.jsonl

# Robustness soak: supervised online hunts under three fault plans ×
# two protocols, bounded in simulated time.  Exit 0 (clean run) and
# exit 1 (violation found and witnessed) both pass — the gate is that
# the supervised loop survives every plan and each run leaves a
# flight-recorder artifact in soak/ that still validates as JSONL
# (CI uploads the artifacts).
SOAK_PLAN1 = crash:node=0,at=20,recover=35;crash:node=1,at=60,recover=80
SOAK_PLAN2 = dup:p=0.1;reorder:p=0.3,window=2;corrupt:p=0.02
SOAK_PLAN3 = part:from=10,until=40,cut=0+1/2;dup:p=0.05

soak: build
	mkdir -p soak
	for p in pb-store-crash paxos-buggy; do \
	  i=0; \
	  for plan in '$(SOAK_PLAN1)' '$(SOAK_PLAN2)' '$(SOAK_PLAN3)'; do \
	    i=$$((i+1)); \
	    echo "soak: $$p plan$$i [$$plan]"; \
	    dune exec bin/lmc_cli.exe -- hunt -p $$p --faults "$$plan" \
	      --interval 5 --max-live 120 --budget 2 --crash-budget 1 \
	      --restart-budget-ms 4000 --max-retries 2 \
	      --record soak/$$p-plan$$i.jsonl > /dev/null; \
	    s=$$?; test $$s -le 1 || exit $$s; \
	  done; \
	done
	$(MAKE) soak-resume
	dune exec bin/jsonl_check.exe -- soak/*.jsonl
	@echo "soak: OK"

# Kill-and-resume legs over the pb-store-crash checkpoint format.  The
# checkpoint directories under soak/ ship with the CI soak artifacts.
#
# Leg A (robustness): SIGKILL a long hunt mid-run, then resume the
# torn checkpoint directory.  The resumed process must warm-start
# (resumed_at is a time, not "cold") and finish cleanly — a kill
# between checkpoint saves loses at most one check interval, never the
# directory.
#
# Leg B (incremental bar): phase 1 hunts with the checker
# under-provisioned (no --crash-budget, so the planted crash-recovery
# bug is unreachable) and stops inside the bug's live window (the
# plan's first crash at t=20 destroys the evidence); phase 2 resumes
# with crash exploration enabled and must find the bug (exit 1) from a
# warm start, and the resumed hunt's cumulative states-explored must
# stay below the sum of two cold runs of the same two configurations.
SOAK_RESUME = _build/default/bin/lmc_cli.exe hunt -p pb-store-crash \
  --faults '$(SOAK_PLAN1)' --interval 5 --budget 2

soak-resume: build
	rm -rf soak/store soak/store-kill soak/store-cold1 soak/store-cold2
	mkdir -p soak
	$(SOAK_RESUME) --max-live 30000 --store soak/store-kill \
	  > soak/resume-kill.out 2>&1 & \
	pid=$$!; sleep 1; kill -9 $$pid 2>/dev/null || true; \
	wait $$pid 2>/dev/null; true
	test -f soak/store-kill/meta.bin
	$(SOAK_RESUME) --max-live 30000 --store soak/store-kill --resume \
	  > soak/resume-killed-resumed.out 2>&1; test $$? -eq 0
	grep 'resumed_at=' soak/resume-killed-resumed.out; \
	grep 'resumed_at=' soak/resume-killed-resumed.out \
	  | grep -qv 'resumed_at=cold'
	$(SOAK_RESUME) --max-live 10 --store soak/store \
	  > soak/resume-phase1.out 2>&1; test $$? -eq 0
	$(SOAK_RESUME) --max-live 120 --crash-budget 1 --store soak/store \
	  --resume --record soak/resume-phase2.jsonl \
	  > soak/resume-phase2.out 2>&1; \
	s=$$?; test $$s -eq 1
	grep 'resumed_at=' soak/resume-phase2.out; \
	grep 'resumed_at=' soak/resume-phase2.out | grep -qv 'resumed_at=cold'
	grep -q '"schema":"store.v1"' soak/resume-phase2.jsonl
	$(SOAK_RESUME) --max-live 10 --store soak/store-cold1 \
	  > soak/resume-cold1.out 2>&1; test $$? -eq 0
	$(SOAK_RESUME) --max-live 120 --crash-budget 1 --store soak/store-cold2 \
	  > soak/resume-cold2.out 2>&1; test $$? -eq 1
	@combined=$$(sed -n 's/.*states_explored=\([0-9]*\).*/\1/p' \
	  soak/resume-phase2.out); \
	cold1=$$(sed -n 's/.*states_explored=\([0-9]*\).*/\1/p' \
	  soak/resume-cold1.out); \
	cold2=$$(sed -n 's/.*states_explored=\([0-9]*\).*/\1/p' \
	  soak/resume-cold2.out); \
	echo "soak-resume: combined=$$combined cold1=$$cold1 cold2=$$cold2"; \
	test "$$combined" -lt $$((cold1 + cold2))
	@echo "soak-resume: OK"

bench:
	dune exec bench/main.exe

# CI-sized pass: micro-benchmarks only, trimmed budgets (used by the
# workflow in .github/workflows/ci.yml).
bench-quick:
	dune exec bench/main.exe -- --quick --only micro

clean:
	dune clean
