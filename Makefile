# Developer entry points.  `make check` is the tier-1 gate: build,
# unit tests, and a CLI smoke test asserting that the observability
# output stays parseable JSONL.

.PHONY: all build test check lint bench bench-quick clean

all: build

build:
	dune build

test:
	dune runtest

check: build test
	dune exec bin/lmc_cli.exe -- check -p paxos-buggy -c lmc-gen \
	  --metrics-out /tmp/m.jsonl --trace-out /tmp/t.jsonl \
	  --record /tmp/rec.jsonl > /dev/null; \
	  test $$? -le 1
	dune exec bin/jsonl_check.exe -- /tmp/m.jsonl /tmp/t.jsonl /tmp/rec.jsonl
	dune exec bin/lmc_cli.exe -- replay /tmp/rec.jsonl > /dev/null
	dune exec bin/lmc_cli.exe -- replay /tmp/rec.jsonl --domains 2 > /dev/null
	dune exec bin/lmc_cli.exe -- report /tmp/rec.jsonl --metrics /tmp/m.jsonl \
	  > /dev/null
	@echo "check: OK"

# Static-analysis gate: protocol sanitizers over every bundled instance
# (fixtures included), reconciled against the checked-in allowlist; the
# lint.v1 stream must itself validate.  The interleaving suite runs as
# part of `make test` (test/test_lint.ml).
lint: build
	dune exec bin/lmc_cli.exe -- lint --all --out lint.jsonl \
	  --allow lint_allow.jsonl
	dune exec bin/jsonl_check.exe -- lint.jsonl

bench:
	dune exec bench/main.exe

# CI-sized pass: micro-benchmarks only, trimmed budgets (used by the
# workflow in .github/workflows/ci.yml).
bench-quick:
	dune exec bench/main.exe -- --quick --only micro

clean:
	dune clean
