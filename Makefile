# Developer entry points.  `make check` is the tier-1 gate: build,
# unit tests, and a CLI smoke test asserting that the observability
# output stays parseable JSONL.

.PHONY: all build test check lint bench bench-quick soak clean

all: build

build:
	dune build

test:
	dune runtest

check: build test
	dune exec bin/lmc_cli.exe -- check -p paxos-buggy -c lmc-gen \
	  --metrics-out /tmp/m.jsonl --trace-out /tmp/t.jsonl \
	  --record /tmp/rec.jsonl > /dev/null; \
	  test $$? -le 1
	dune exec bin/jsonl_check.exe -- /tmp/m.jsonl /tmp/t.jsonl /tmp/rec.jsonl
	dune exec bin/lmc_cli.exe -- replay /tmp/rec.jsonl > /dev/null
	dune exec bin/lmc_cli.exe -- replay /tmp/rec.jsonl --domains 2 > /dev/null
	dune exec bin/lmc_cli.exe -- report /tmp/rec.jsonl --metrics /tmp/m.jsonl \
	  > /dev/null
	@echo "check: OK"

# Static-analysis gate: protocol sanitizers over every bundled instance
# (fixtures included), reconciled against the checked-in allowlist; the
# lint.v1 stream must itself validate.  The interleaving suite runs as
# part of `make test` (test/test_lint.ml).
lint: build
	dune exec bin/lmc_cli.exe -- lint --all --out lint.jsonl \
	  --allow lint_allow.jsonl
	dune exec bin/jsonl_check.exe -- lint.jsonl

# Robustness soak: supervised online hunts under three fault plans ×
# two protocols, bounded in simulated time.  Exit 0 (clean run) and
# exit 1 (violation found and witnessed) both pass — the gate is that
# the supervised loop survives every plan and each run leaves a
# flight-recorder artifact in soak/ that still validates as JSONL
# (CI uploads the artifacts).
SOAK_PLAN1 = crash:node=0,at=20,recover=35;crash:node=1,at=60,recover=80
SOAK_PLAN2 = dup:p=0.1;reorder:p=0.3,window=2;corrupt:p=0.02
SOAK_PLAN3 = part:from=10,until=40,cut=0+1/2;dup:p=0.05

soak: build
	mkdir -p soak
	for p in pb-store-crash paxos-buggy; do \
	  i=0; \
	  for plan in '$(SOAK_PLAN1)' '$(SOAK_PLAN2)' '$(SOAK_PLAN3)'; do \
	    i=$$((i+1)); \
	    echo "soak: $$p plan$$i [$$plan]"; \
	    dune exec bin/lmc_cli.exe -- hunt -p $$p --faults "$$plan" \
	      --interval 5 --max-live 120 --budget 2 --crash-budget 1 \
	      --restart-budget-ms 4000 --max-retries 2 \
	      --record soak/$$p-plan$$i.jsonl > /dev/null; \
	    s=$$?; test $$s -le 1 || exit $$s; \
	  done; \
	done
	dune exec bin/jsonl_check.exe -- soak/*.jsonl
	@echo "soak: OK"

bench:
	dune exec bench/main.exe

# CI-sized pass: micro-benchmarks only, trimmed budgets (used by the
# workflow in .github/workflows/ci.yml).
bench-quick:
	dune exec bench/main.exe -- --quick --only micro

clean:
	dune clean
